//! Blocking client for the pt-serve protocol: submit, status, tail
//! (live-streaming), cancel, fetch, shutdown — one persistent connection,
//! any number of sequential requests.

use crate::hub::JobState;
use crate::protocol::{check_response, read_frame, write_frame};
use crate::server::read_port_file;
use crate::spec::JobSpec;
use pt_ham::PtError;
use pt_io::Json;
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// One job's row in a `status` response.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub id: u64,
    /// The spec's name.
    pub name: String,
    /// Current state-machine state.
    pub state: JobState,
    /// Steps streamed so far.
    pub steps_done: usize,
    /// Steps the spec asks for.
    pub steps: usize,
    /// Cores the job occupies while running.
    pub cores: usize,
    /// Steps per second of the current run attempt (active jobs that have
    /// committed at least one new step; `None` otherwise).
    pub steps_per_second: Option<f64>,
    /// Failure message, when failed.
    pub error: Option<String>,
}

/// One `tail` stream frame: the rows past the previous cursor.
#[derive(Clone, Debug)]
pub struct TailChunk {
    /// Absolute row index of the first entry.
    pub start: usize,
    /// Times of the new rows.
    pub t: Vec<f64>,
    /// Channel values of the new rows.
    pub values: Vec<f64>,
    /// Job state when the frame was cut.
    pub state: JobState,
}

/// One per-job row inside a [`StatsFrame`].
#[derive(Clone, Debug)]
pub struct JobRate {
    /// Job id.
    pub id: u64,
    /// Job state when the frame was cut (always an active state).
    pub state: JobState,
    /// Steps committed so far (including any restored prefix).
    pub steps_done: usize,
    /// Steps per second of the current run attempt (0 until the first
    /// new step lands).
    pub steps_per_second: f64,
}

/// One `stats` telemetry frame: a consistent snapshot of server
/// throughput, queue depth, and core utilization, with a row per active
/// job. All times come from the server's pt-trace monotonic clock.
#[derive(Clone, Debug)]
pub struct StatsFrame {
    /// Server monotonic timestamp (µs) when the frame was cut.
    pub t_us: u64,
    /// Jobs admitted but waiting for cores.
    pub queue_depth: usize,
    /// Cores currently handed out by the scheduler.
    pub cores_in_use: usize,
    /// Total cores the scheduler may hand out.
    pub budget_cores: usize,
    /// Committed steps across every job the server knows.
    pub steps_total: usize,
    /// Server-wide step throughput since the previous frame of this
    /// stream (0 on the first frame).
    pub steps_per_second: f64,
    /// Per-active-job step rates.
    pub jobs: Vec<JobRate>,
    /// Global pt-trace counter values by name — present only when the
    /// server was started with tracing armed.
    pub counters: Vec<(String, u64)>,
}

/// A connected pt-serve client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to an explicit `host:port`.
    pub fn connect(addr: &str) -> Result<Client, PtError> {
        let stream = TcpStream::connect(addr).map_err(|e| PtError::Io {
            path: addr.to_string(),
            reason: format!("connecting: {e}"),
        })?;
        Ok(Client { stream })
    }

    /// Connect to the server that owns `run_dir` (via its port file).
    pub fn for_run_dir(run_dir: &Path) -> Result<Client, PtError> {
        Self::connect(&read_port_file(run_dir)?)
    }

    fn request(&mut self, msg: &Json) -> Result<Json, PtError> {
        write_frame(&mut self.stream, msg)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| PtError::Io {
            path: "<pt-serve socket>".into(),
            reason: "server closed the connection mid-request".into(),
        })?;
        check_response(reply)
    }

    /// Submit a job; returns its server-assigned id. Never-fitting or
    /// malformed specs are refused here, with the server's typed message.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, PtError> {
        let reply = self.request(&Json::Obj(vec![
            ("cmd".to_string(), Json::Str("submit".into())),
            ("spec".to_string(), spec.to_value()),
        ]))?;
        reply
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| PtError::InvalidConfig("malformed submit response".into()))
    }

    /// All jobs the server knows, in id order.
    pub fn status(&mut self) -> Result<Vec<JobStatus>, PtError> {
        let reply = self.request(&Json::Obj(vec![(
            "cmd".to_string(),
            Json::Str("status".into()),
        )]))?;
        let jobs = reply
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| PtError::InvalidConfig("malformed status response".into()))?;
        jobs.iter()
            .map(|j| {
                let field = |k: &str| j.get(k).and_then(Json::as_u64);
                let state = j
                    .get("state")
                    .and_then(Json::as_str)
                    .and_then(JobState::parse);
                match (field("id"), state) {
                    (Some(id), Some(state)) => Ok(JobStatus {
                        id,
                        name: j
                            .get("name")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        state,
                        steps_done: field("steps_done").unwrap_or(0) as usize,
                        steps: field("steps").unwrap_or(0) as usize,
                        cores: field("cores").unwrap_or(0) as usize,
                        steps_per_second: j.get("steps_per_second").and_then(Json::as_f64),
                        error: j.get("error").and_then(Json::as_str).map(str::to_string),
                    }),
                    _ => Err(PtError::InvalidConfig(
                        "malformed job row in status response".into(),
                    )),
                }
            })
            .collect()
    }

    /// Request cancellation; returns the job's state as of the request
    /// (a running job turns `cancelled` at its next step boundary).
    pub fn cancel(&mut self, job: u64) -> Result<JobState, PtError> {
        let reply = self.request(&Json::Obj(vec![
            ("cmd".to_string(), Json::Str("cancel".into())),
            ("job".to_string(), Json::Num(job as f64)),
        ]))?;
        reply
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| PtError::InvalidConfig("malformed cancel response".into()))
    }

    /// Fetch a done job's full result table (the parsed `result.json`:
    /// meta keys, `n_rows`, and `columns` of exact shortest-round-trip
    /// floats).
    pub fn fetch(&mut self, job: u64) -> Result<Json, PtError> {
        let reply = self.request(&Json::Obj(vec![
            ("cmd".to_string(), Json::Str("fetch".into())),
            ("job".to_string(), Json::Num(job as f64)),
        ]))?;
        reply
            .get("table")
            .cloned()
            .ok_or_else(|| PtError::InvalidConfig("malformed fetch response".into()))
    }

    /// A column from a fetched table (see [`Client::fetch`]).
    pub fn table_column(table: &Json, name: &str) -> Option<Vec<f64>> {
        table
            .get("columns")?
            .get(name)?
            .as_arr()
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
    }

    /// Stream one channel of a job, starting `after` rows in. Each
    /// server frame is handed to `on_chunk`; with `follow` the stream
    /// runs until the job is terminal. Returns the job's final state.
    pub fn tail(
        &mut self,
        job: u64,
        channel: &str,
        after: usize,
        follow: bool,
        mut on_chunk: impl FnMut(&TailChunk),
    ) -> Result<JobState, PtError> {
        write_frame(
            &mut self.stream,
            &Json::Obj(vec![
                ("cmd".to_string(), Json::Str("tail".into())),
                ("job".to_string(), Json::Num(job as f64)),
                ("channel".to_string(), Json::Str(channel.to_string())),
                ("after".to_string(), Json::Num(after as f64)),
                ("follow".to_string(), Json::Bool(follow)),
            ]),
        )?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or_else(|| PtError::Io {
                path: "<pt-serve socket>".into(),
                reason: "server closed the connection mid-tail".into(),
            })?;
            let frame = check_response(frame)?;
            let nums = |k: &str| -> Vec<f64> {
                frame
                    .get(k)
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(Json::as_f64).collect())
                    .unwrap_or_default()
            };
            let state = frame
                .get("state")
                .and_then(Json::as_str)
                .and_then(JobState::parse)
                .ok_or_else(|| PtError::InvalidConfig("malformed tail frame".into()))?;
            on_chunk(&TailChunk {
                start: frame.get("start").and_then(Json::as_u64).unwrap_or(0) as usize,
                t: nums("t"),
                values: nums("values"),
                state: state.clone(),
            });
            if frame.get("done").and_then(Json::as_bool) == Some(true) {
                return Ok(state);
            }
        }
    }

    /// Stream server telemetry. Each frame is handed to `on_frame`; with
    /// `follow` the stream runs until every job is terminal (a frame goes
    /// out whenever total committed steps advance), without it exactly
    /// one frame arrives. Returning `false` from `on_frame` stops
    /// reading early — the stream is then mid-flight, which is why this
    /// method consumes the client (`self`): the connection cannot be
    /// reused for further requests.
    pub fn stats(
        mut self,
        follow: bool,
        mut on_frame: impl FnMut(&StatsFrame) -> bool,
    ) -> Result<(), PtError> {
        write_frame(
            &mut self.stream,
            &Json::Obj(vec![
                ("cmd".to_string(), Json::Str("stats".into())),
                ("follow".to_string(), Json::Bool(follow)),
            ]),
        )?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or_else(|| PtError::Io {
                path: "<pt-serve socket>".into(),
                reason: "server closed the connection mid-stats".into(),
            })?;
            let frame = check_response(frame)?;
            let int = |k: &str| frame.get(k).and_then(Json::as_u64).unwrap_or(0);
            let jobs = frame
                .get("jobs")
                .and_then(Json::as_arr)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| {
                            Some(JobRate {
                                id: r.get("id").and_then(Json::as_u64)?,
                                state: JobState::parse(r.get("state").and_then(Json::as_str)?)?,
                                steps_done: r.get("steps_done").and_then(Json::as_u64)? as usize,
                                steps_per_second: r
                                    .get("steps_per_second")
                                    .and_then(Json::as_f64)
                                    .unwrap_or(0.0),
                            })
                        })
                        .collect()
                })
                .unwrap_or_default();
            let counters = frame
                .get("counters")
                .and_then(Json::as_obj)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                        .collect()
                })
                .unwrap_or_default();
            let parsed = StatsFrame {
                t_us: int("t_us"),
                queue_depth: int("queue_depth") as usize,
                cores_in_use: int("cores_in_use") as usize,
                budget_cores: int("budget_cores") as usize,
                steps_total: int("steps_total") as usize,
                steps_per_second: frame
                    .get("steps_per_second")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                jobs,
                counters,
            };
            let keep_going = on_frame(&parsed);
            if !keep_going || frame.get("done").and_then(Json::as_bool) == Some(true) {
                return Ok(());
            }
        }
    }

    /// Ask the server to shut down (it drains: running jobs finish).
    pub fn shutdown(&mut self) -> Result<(), PtError> {
        self.request(&Json::Obj(vec![(
            "cmd".to_string(),
            Json::Str("shutdown".into()),
        )]))
        .map(|_| ())
    }

    /// Poll `status` until `job` reaches a terminal state (or `timeout`
    /// elapses — a typed error, so tests fail loudly instead of hanging).
    pub fn wait_terminal(&mut self, job: u64, timeout: Duration) -> Result<JobStatus, PtError> {
        let start = std::time::Instant::now();
        loop {
            let all = self.status()?;
            if let Some(row) = all.into_iter().find(|r| r.id == job) {
                if row.state.is_terminal() {
                    return Ok(row);
                }
            } else {
                return Err(PtError::InvalidConfig(format!("unknown job {job}")));
            }
            if start.elapsed() > timeout {
                return Err(PtError::InvalidConfig(format!(
                    "job {job} still not terminal after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
