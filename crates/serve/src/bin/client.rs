//! `pt-serve-client <run_dir> <command> [...]` — the CLI face of
//! [`pt_serve::Client`]. Finds the server through `<run_dir>/port`.
//!
//! ```text
//! pt-serve-client RUN submit SPEC.json     print the new job id
//! pt-serve-client RUN status               one line per job
//! pt-serve-client RUN tail JOB CHANNEL     follow a channel until terminal
//! pt-serve-client RUN stats                follow live telemetry frames
//! pt-serve-client RUN cancel JOB
//! pt-serve-client RUN fetch JOB            print the result table JSON
//! pt-serve-client RUN shutdown             drain jobs, then stop
//! ```

use pt_ham::PtError;
use pt_serve::{Client, JobSpec};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pt-serve-client <run_dir> submit <spec.json> | status | \
         tail <job> <channel> | stats | cancel <job> | fetch <job> | shutdown"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(run_dir), Some(cmd)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    match run(Path::new(run_dir), cmd, &args[3..]) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => usage(),
        Err(e) => {
            eprintln!("pt-serve-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_job(arg: Option<&String>) -> Result<u64, PtError> {
    arg.and_then(|s| s.parse().ok())
        .ok_or_else(|| PtError::InvalidConfig("expected a numeric job id".into()))
}

fn run(run_dir: &Path, cmd: &str, rest: &[String]) -> Result<bool, PtError> {
    let mut client = Client::for_run_dir(run_dir)?;
    match cmd {
        "submit" => {
            let Some(spec_path) = rest.first() else {
                return Ok(false);
            };
            let text = std::fs::read_to_string(spec_path).map_err(|e| PtError::Io {
                path: spec_path.clone(),
                reason: format!("reading spec: {e}"),
            })?;
            let job = client.submit(&JobSpec::from_json(&text)?)?;
            println!("{job}");
        }
        "status" => {
            for row in client.status()? {
                let err = row.error.as_deref().unwrap_or("");
                println!(
                    "{:>6}  {:<14}  {:>5}/{:<5}  {:>3} cores  {}  {}",
                    row.id,
                    row.state.as_str(),
                    row.steps_done,
                    row.steps,
                    row.cores,
                    row.name,
                    err
                );
            }
        }
        "tail" => {
            let job = parse_job(rest.first())?;
            let Some(channel) = rest.get(1) else {
                return Ok(false);
            };
            let state = client.tail(job, channel, 0, true, |chunk| {
                for (t, v) in chunk.t.iter().zip(&chunk.values) {
                    println!("{t:>14.6}  {v:>20.12e}");
                }
            })?;
            eprintln!("job {job}: {}", state.as_str());
        }
        "stats" => {
            client.stats(true, |f| {
                let jobs: Vec<String> = f
                    .jobs
                    .iter()
                    .map(|j| {
                        format!(
                            "job {}: {} steps, {:.2}/s",
                            j.id, j.steps_done, j.steps_per_second
                        )
                    })
                    .collect();
                println!(
                    "t={:>10}us  queue={}  cores={}/{}  steps={}  rate={:.2}/s  {}",
                    f.t_us,
                    f.queue_depth,
                    f.cores_in_use,
                    f.budget_cores,
                    f.steps_total,
                    f.steps_per_second,
                    jobs.join("  ")
                );
                true
            })?;
        }
        "cancel" => {
            let job = parse_job(rest.first())?;
            println!("{}", client.cancel(job)?.as_str());
        }
        "fetch" => {
            let job = parse_job(rest.first())?;
            println!("{}", client.fetch(job)?.dump());
        }
        "shutdown" => client.shutdown()?,
        _ => return Ok(false),
    }
    Ok(true)
}
