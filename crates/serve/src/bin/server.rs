//! `pt-serve-server <run_dir> <budget_cores> [bind_addr] [--trace]`
//!
//! Starts the job server over `run_dir` (recovering any jobs already
//! there), prints `LISTENING <addr>` once the port is bound, and runs
//! until a client sends `shutdown` (running jobs drain first). Kill it
//! ungracefully instead and the next start on the same `run_dir` resumes
//! every interrupted job from its newest valid snapshot.
//!
//! `--trace` arms pt-trace: each finished job exports `trace.json` +
//! `metrics.json` into its job directory and `stats` frames carry live
//! counter values. Tracing never perturbs results — series stay
//! bit-identical with it on or off.

use pt_serve::{start, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().collect();
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--trace");
    let (run_dir, budget) = match (args.get(1), args.get(2).map(|s| s.parse::<usize>())) {
        (Some(dir), Some(Ok(budget))) => (dir.clone(), budget),
        _ => {
            eprintln!("usage: pt-serve-server <run_dir> <budget_cores> [bind_addr] [--trace]");
            return ExitCode::from(2);
        }
    };
    let mut config = ServerConfig::new(run_dir, budget);
    config.trace = trace;
    if let Some(addr) = args.get(3) {
        config.addr.clone_from(addr);
    }
    match start(config) {
        Ok(handle) => {
            println!("LISTENING {}", handle.addr());
            handle.wait_for_shutdown_request();
            handle.stop();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pt-serve-server: {e}");
            ExitCode::FAILURE
        }
    }
}
