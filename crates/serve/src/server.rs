//! The pt-serve server: accept loop, core-packing admission, supervised
//! job runners, the event pump, and crash recovery.
//!
//! # Run-directory layout
//!
//! ```text
//! <run_dir>/port                      "127.0.0.1:<port>" (rewritten on start)
//! <run_dir>/jobs/job_00000003/
//!     spec.json                       the submitted JobSpec, verbatim
//!     ckpt_<step>.ptio                rolling snapshots (pt-io container)
//!     result.json                     final series table — written atomically,
//!                                     so its existence IS the "done" marker
//!     cancelled | failed              terminal markers for the other exits
//! ```
//!
//! # Crash durability
//!
//! Nothing the server knows lives only in memory: specs, snapshots and
//! terminal markers are all on disk, every one written atomically
//! (tmp + rename) or CRC-verified on read (snapshots). On startup the
//! server rescans `jobs/`: finished/failed/cancelled jobs are rehydrated
//! into their terminal states and every other job is re-enqueued; when its
//! runner starts it resumes from the newest *valid* snapshot
//! ([`Simulation::resume_latest`] skips truncated or corrupt files with
//! typed errors) or from scratch if none survived. A `kill -9` mid-fleet
//! therefore costs at most `checkpoint_every` steps per job and zero
//! bits of the final series.
//!
//! # Threads
//!
//! One listener (accept loop), one connection handler per client, one
//! supervised runner per running job, and one event pump. Runners never
//! touch the state lock mid-step: they publish [`JobEvent`]s over an mpsc
//! fan-in and the pump is the only writer of job progress. Runner panics
//! are caught by the supervisor and become typed `failed` states, not a
//! dead server.

use crate::hub::{update_samples, JobEvent, JobProgress, JobRecord, JobState};
use crate::protocol::{error_response, ok_response, read_frame, write_frame};
use crate::scheduler::CorePackingScheduler;
use crate::spec::JobSpec;
use pt_core::{CancelToken, Simulation};
use pt_ham::PtError;
use pt_io::Json;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Root of the durable run state (created if missing).
    pub run_dir: PathBuf,
    /// Total cores the scheduler may hand out concurrently.
    pub budget_cores: usize,
    /// Bind address; the default `127.0.0.1:0` picks a free port.
    pub addr: String,
    /// Arm pt-trace for the whole process: jobs export `trace.json`
    /// (Chrome trace-event format) and `metrics.json` (per-step phase
    /// breakdown + counter deltas) into their job directories, and the
    /// `stats` stream carries live counter values. Off by default —
    /// tracing is bit-non-perturbing but not free.
    pub trace: bool,
}

impl ServerConfig {
    /// A loopback server over `run_dir` with the given core budget.
    pub fn new(run_dir: impl Into<PathBuf>, budget_cores: usize) -> Self {
        ServerConfig {
            run_dir: run_dir.into(),
            budget_cores,
            addr: "127.0.0.1:0".into(),
            trace: false,
        }
    }

    /// Enable per-job trace/metrics export and live counter telemetry.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// The port file a started server maintains under its run dir, so
/// clients (and the CLI) can find it by directory alone.
pub fn port_file(run_dir: &Path) -> PathBuf {
    run_dir.join("port")
}

/// Read the address a server under `run_dir` is listening on.
pub fn read_port_file(run_dir: &Path) -> Result<String, PtError> {
    let path = port_file(run_dir);
    let text = std::fs::read_to_string(&path).map_err(|e| PtError::Io {
        path: path.display().to_string(),
        reason: format!("reading server port file: {e}"),
    })?;
    Ok(text.trim().to_string())
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> PtError {
    PtError::Io {
        path: path.display().to_string(),
        reason: format!("{what}: {e}"),
    }
}

/// Write `text` to `path` atomically (tmp + rename), so readers — and
/// the recovery scan — never observe a half-written file.
fn write_atomic(path: &Path, text: &str) -> Result<(), PtError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, "writing", &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, "renaming into place", &e))
}

struct ServerState {
    scheduler: CorePackingScheduler,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
}

struct Shared {
    state: Mutex<ServerState>,
    /// Notified on every job state/progress change (tail waiters).
    cv: Condvar,
    /// Cloned into each runner; `Mutex` only to stay `Sync` across rustc
    /// versions where `mpsc::Sender` is not.
    events: Mutex<Sender<JobEvent>>,
    /// Signals the owner that a client requested shutdown.
    shutdown_req: Mutex<Sender<()>>,
    runners: Mutex<Vec<JoinHandle<()>>>,
    stop: AtomicBool,
    jobs_dir: PathBuf,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, ServerState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn sender(&self) -> Sender<JobEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// A started server: owns its threads, exposes the bound address, and
/// tears everything down (draining jobs) on [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_join: Option<JoinHandle<()>>,
    pump_join: Option<JoinHandle<()>>,
    shutdown_rx: Receiver<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until some client sends the `shutdown` command (the server
    /// binary's main thread parks here).
    pub fn wait_for_shutdown_request(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Stop accepting connections, let every admitted job run to a
    /// terminal state (drain), then stop the pump and join all threads.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // wake the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.listener_join.take() {
            let _ = j.join();
        }
        // drain: runners finishing make the pump start queued jobs, which
        // pushes new handles — loop until no handles AND no live jobs
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut r = self
                    .shared
                    .runners
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                r.drain(..).collect()
            };
            if handles.is_empty() {
                let busy = {
                    let st = self.shared.lock_state();
                    st.jobs.values().any(|j| !j.state.is_terminal())
                };
                if !busy {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let _ = self.shared.sender().send(JobEvent::Stop);
        if let Some(j) = self.pump_join.take() {
            let _ = j.join();
        }
    }
}

/// Start a server. Recovers any jobs found under `run_dir/jobs` (terminal
/// jobs rehydrate; interrupted jobs re-enqueue and auto-resume), binds the
/// listener, writes the port file and spawns the worker threads.
pub fn start(config: ServerConfig) -> Result<ServerHandle, PtError> {
    if config.trace {
        pt_trace::set_enabled(true);
    }
    let jobs_dir = config.run_dir.join("jobs");
    std::fs::create_dir_all(&jobs_dir).map_err(|e| io_err(&jobs_dir, "creating", &e))?;
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| io_err(Path::new(&config.addr), "binding", &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| io_err(Path::new(&config.addr), "querying bound address", &e))?;
    write_atomic(&port_file(&config.run_dir), &addr.to_string())?;

    let mut state = ServerState {
        scheduler: CorePackingScheduler::new(config.budget_cores)?,
        jobs: BTreeMap::new(),
        next_id: 0,
    };
    recover_jobs(&jobs_dir, &mut state);

    let (tx, rx) = channel::<JobEvent>();
    let (sd_tx, sd_rx) = channel::<()>();
    let shared = Arc::new(Shared {
        state: Mutex::new(state),
        cv: Condvar::new(),
        events: Mutex::new(tx),
        shutdown_req: Mutex::new(sd_tx),
        runners: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
        jobs_dir,
    });

    // start whatever the recovered queue allows right away
    kick(&shared);

    let pump_shared = shared.clone();
    // pt-analyze: allow(raw-thread-spawn) — event-pump infrastructure thread: drains the mpsc fan-in, touches no numeric state; compute stays on pt-par/pt-mpi inside runners
    let pump_join = std::thread::spawn(move || pump(&pump_shared, &rx));
    let listen_shared = shared.clone();
    // pt-analyze: allow(raw-thread-spawn) — TCP accept-loop infrastructure thread; blocks on the listener, runs no simulation code
    let listener_join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if listen_shared.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let conn_shared = listen_shared.clone();
            // pt-analyze: allow(raw-thread-spawn) — one IO thread per client connection (blocking protocol reads); determinism contract is untouched, job compute happens in runners
            std::thread::spawn(move || handle_conn(&conn_shared, stream));
        }
    });

    Ok(ServerHandle {
        addr,
        shared,
        listener_join: Some(listener_join),
        pump_join: Some(pump_join),
        shutdown_rx: sd_rx,
    })
}

/// Rescan `jobs/` after a restart (or a crash): every job directory is
/// classified by its durable markers and either rehydrated into a
/// terminal state or re-enqueued for auto-resume. A job whose spec cannot
/// be read back, or that no longer fits the (possibly re-configured)
/// budget, is recorded as failed — visibly, never silently dropped.
fn recover_jobs(jobs_dir: &Path, state: &mut ServerState) {
    let Ok(entries) = std::fs::read_dir(jobs_dir) else {
        return;
    };
    let mut dirs: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let id: u64 = name.strip_prefix("job_")?.parse().ok()?;
            e.file_type().ok()?.is_dir().then(|| (id, e.path()))
        })
        .collect();
    dirs.sort();
    for (id, dir) in dirs {
        state.next_id = state.next_id.max(id + 1);
        let spec_path = dir.join("spec.json");
        let spec = std::fs::read_to_string(&spec_path)
            .map_err(|e| io_err(&spec_path, "reading job spec", &e))
            .and_then(|text| JobSpec::from_json(&text));
        let mut record = match spec {
            Ok(spec) => JobRecord {
                id,
                spec,
                dir: dir.clone(),
                state: JobState::Queued,
                error: None,
                progress: JobProgress::default(),
                cancel: CancelToken::new(),
                run_started_us: None,
                steps_at_run_start: 0,
            },
            Err(e) => {
                // keep the slot visible: the directory exists, so the job
                // existed — surfacing "failed: unreadable spec" beats
                // resurrecting nothing
                let mut spec = JobSpec::from_json(
                    r#"{"name":"<unreadable>","system":{"ecut":1.0},"dt_as":1.0,"steps":1}"#,
                )
                .expect("invariant: the placeholder spec literal is valid JSON");
                spec.name = format!("job_{id:08}");
                state.jobs.insert(
                    id,
                    JobRecord {
                        id,
                        spec,
                        dir,
                        state: JobState::Failed,
                        error: Some(format!("recovery: {e}")),
                        progress: JobProgress::default(),
                        cancel: CancelToken::new(),
                        run_started_us: None,
                        steps_at_run_start: 0,
                    },
                );
                continue;
            }
        };
        if dir.join("result.json").exists() {
            record.state = JobState::Done;
            rehydrate_progress(&mut record);
        } else if dir.join("cancelled").exists() {
            record.state = JobState::Cancelled;
        } else if let Ok(msg) = std::fs::read_to_string(dir.join("failed")) {
            record.state = JobState::Failed;
            record.error = Some(msg);
        } else if let Err(e) = state.scheduler.admit(id, record.spec.cores()) {
            record.state = JobState::Failed;
            record.error = Some(e.to_string());
        }
        state.jobs.insert(id, record);
    }
}

/// Reload a completed job's streamed columns from its `result.json`, so
/// `tail` keeps working across restarts.
fn rehydrate_progress(record: &mut JobRecord) {
    let path = record.dir.join("result.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let Ok(table) = Json::parse(&text) else {
        return;
    };
    let Some(cols) = table.get("columns").and_then(Json::as_obj) else {
        return;
    };
    let decode = |j: &Json| -> Option<Vec<f64>> {
        j.as_arr()
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
    };
    for (name, col) in cols {
        let Some(values) = decode(col) else { continue };
        if name == "t" {
            record.progress.t = values;
        } else {
            record.progress.channels.insert(name.clone(), values);
        }
    }
}

/// Run `start_batch` under the lock and spawn a supervised runner for
/// every job the scheduler releases.
fn kick(shared: &Arc<Shared>) {
    let to_start: Vec<u64> = {
        let _sp = pt_trace::span("sched_dispatch");
        let mut st = shared.lock_state();
        let batch = st.scheduler.start_batch();
        batch
            .iter()
            .map(|&(id, _)| {
                if let Some(j) = st.jobs.get_mut(&id) {
                    j.state = JobState::Running;
                    j.run_started_us = Some(pt_trace::monotonic_us());
                    j.steps_at_run_start = j.progress.steps_done();
                }
                pt_trace::counter_add(pt_trace::Counter::SchedDispatches, 1);
                id
            })
            .collect()
    };
    shared.cv.notify_all();
    for id in to_start {
        spawn_runner(shared, id);
    }
}

/// Spawn the supervised runner thread for job `id`: the job body runs
/// under `catch_unwind`, so a panicking propagator (or any bug below us)
/// becomes a typed `failed` job with the panic text as its error — the
/// server itself never goes down with a job.
fn spawn_runner(shared: &Arc<Shared>, id: u64) {
    let runner_shared = shared.clone();
    let tx = shared.sender();
    // pt-analyze: allow(raw-thread-spawn) — per-job supervisor thread (catch_unwind boundary); the simulation inside it draws all compute threads from its pinned pt-par/pt-mpi layout
    let handle = std::thread::spawn(move || {
        let dir = {
            let st = runner_shared.lock_state();
            st.jobs.get(&id).map(|j| j.dir.clone())
        };
        let Some(dir) = dir else { return };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&runner_shared, id, &tx)));
        let event = match outcome {
            Ok(Ok(())) => JobEvent::Finished { id },
            Ok(Err(PtError::Cancelled { .. })) => {
                let _ = write_atomic(&dir.join("cancelled"), "cancelled\n");
                JobEvent::Cancelled { id }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                let _ = write_atomic(&dir.join("failed"), &msg);
                JobEvent::Failed { id, error: msg }
            }
            Err(panic) => {
                let msg = format!("job panicked: {}", panic_text(panic.as_ref()));
                let _ = write_atomic(&dir.join("failed"), &msg);
                JobEvent::Failed { id, error: msg }
            }
        };
        let _ = tx.send(event);
    });
    shared
        .runners
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(handle);
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The job body: build the system, auto-resume from the newest valid
/// snapshot (or start fresh), re-arm checkpointing and cancellation,
/// stream every step through the tap, and atomically publish the final
/// series as `result.json`.
fn run_job(shared: &Arc<Shared>, id: u64, tx: &Sender<JobEvent>) -> Result<(), PtError> {
    let (spec, dir, cancel) = {
        let st = shared.lock_state();
        let j = st
            .jobs
            .get(&id)
            .ok_or_else(|| PtError::InvalidConfig(format!("job {id} vanished before start")))?;
        (j.spec.clone(), j.dir.clone(), j.cancel.clone())
    };
    // window the global event/counter streams to this job: everything
    // recorded past the mark is attributed to it on export. Concurrent
    // jobs interleave into one process-wide trace — the per-thread lanes
    // (`pt-par-*`, `pt-rank-*`) keep the picture readable regardless.
    let trace_mark = pt_trace::is_enabled().then(pt_trace::mark);
    let sys = spec.build_system()?;
    let resumed;
    let mut sim = match Simulation::resume_latest(&sys, &dir)? {
        Some(sim) => {
            resumed = true;
            if let Some(series) = sim.restored_series() {
                let mut progress = JobProgress::default();
                progress.absorb_series(series);
                let _ = tx.send(JobEvent::Restored { id, progress });
            }
            sim
        }
        None => {
            resumed = false;
            spec.build_fresh_simulation(&sys)?
        }
    };
    sim = sim.checkpoint_every(spec.checkpoint_every, &dir)?;
    sim.set_cancel_token(cancel);
    let every = spec.checkpoint_every;
    let tap_tx = tx.clone();
    sim.set_step_tap(move |u| {
        // a snapshot of an *earlier* step is on disk once we've passed
        // the first checkpoint boundary (or restored from one)
        let durable = resumed || u.step_index >= every;
        let _ = tap_tx.send(JobEvent::Step {
            id,
            t: u.t,
            samples: update_samples(u),
            durable,
        });
    });
    let series = sim.run()?;
    let table = series.to_table()?;
    write_atomic(&dir.join("result.json"), &table.to_json())?;
    if let Some(mark) = trace_mark {
        write_trace_artifacts(id, &dir, &series, &mark)?;
    }
    Ok(())
}

/// Export the job's observability artifacts next to its result:
/// `trace.json` (Chrome trace-event format — load it in `about:tracing`
/// or Perfetto) and `metrics.json` (the per-step phase breakdown from
/// [`pt_core::TimeSeries::phase_table`] plus the pt-trace counter deltas
/// accumulated since the job's mark). Deliberately separate files from
/// `result.json`: results are bit-compared across layouts and resume,
/// telemetry never is.
fn write_trace_artifacts(
    id: u64,
    dir: &Path,
    series: &pt_core::TimeSeries,
    mark: &pt_trace::Mark,
) -> Result<(), PtError> {
    write_atomic(&dir.join("trace.json"), &pt_trace::chrome_trace_since(mark))?;
    let phases = Json::parse(&series.phase_table()?.to_json())?;
    let counters = Json::Obj(
        pt_trace::counters_since(mark)
            .iter()
            .map(|(name, v)| (name.to_string(), Json::Num(v as f64)))
            .collect(),
    );
    let metrics = Json::Obj(vec![
        ("job".to_string(), Json::Num(id as f64)),
        ("phases".to_string(), phases),
        ("counters".to_string(), counters),
        (
            "dropped_events".to_string(),
            Json::Num(pt_trace::dropped_events() as f64),
        ),
    ]);
    write_atomic(&dir.join("metrics.json"), &metrics.dump())
}

/// The single consumer of the job-event fan-in: applies each event to the
/// shared state, wakes tail waiters, and starts newly-fitting jobs when
/// cores drain.
fn pump(shared: &Arc<Shared>, rx: &Receiver<JobEvent>) {
    while let Ok(ev) = rx.recv() {
        let mut to_start: Vec<u64> = Vec::new();
        {
            let mut st = shared.lock_state();
            match ev {
                JobEvent::Stop => break,
                JobEvent::Step {
                    id,
                    t,
                    samples,
                    durable,
                } => {
                    if let Some(j) = st.jobs.get_mut(&id) {
                        if j.state.is_active() {
                            j.progress.push_step(t, &samples);
                            if durable && j.state == JobState::Running {
                                j.state = JobState::Checkpointed;
                            }
                        }
                    }
                }
                JobEvent::Restored { id, progress } => {
                    if let Some(j) = st.jobs.get_mut(&id) {
                        if j.state.is_active() {
                            j.progress = progress;
                            j.state = JobState::Checkpointed;
                            // restored steps were not computed this run —
                            // keep them out of the live step rate
                            j.steps_at_run_start = j.progress.steps_done();
                        }
                    }
                }
                JobEvent::Finished { id } => {
                    settle(&mut st, id, JobState::Done, None, &mut to_start);
                }
                JobEvent::Failed { id, error } => {
                    settle(&mut st, id, JobState::Failed, Some(error), &mut to_start);
                }
                JobEvent::Cancelled { id } => {
                    settle(&mut st, id, JobState::Cancelled, None, &mut to_start);
                }
            }
        }
        shared.cv.notify_all();
        for id in to_start {
            spawn_runner(shared, id);
        }
    }
}

/// Move a job to a terminal state, return its cores and promote whatever
/// now fits.
fn settle(
    st: &mut ServerState,
    id: u64,
    terminal: JobState,
    error: Option<String>,
    to_start: &mut Vec<u64>,
) {
    let active_cores = st
        .jobs
        .get(&id)
        .filter(|j| j.state.is_active())
        .map(|j| j.spec.cores());
    if let Some(cores) = active_cores {
        st.scheduler.release(cores);
    }
    if let Some(j) = st.jobs.get_mut(&id) {
        j.state = terminal;
        j.error = error;
    }
    for (bid, _) in st.scheduler.start_batch() {
        if let Some(j) = st.jobs.get_mut(&bid) {
            j.state = JobState::Running;
            j.run_started_us = Some(pt_trace::monotonic_us());
            j.steps_at_run_start = j.progress.steps_done();
        }
        pt_trace::counter_add(pt_trace::Counter::SchedDispatches, 1);
        to_start.push(bid);
    }
}

/// One client connection: a loop of length-prefixed requests. Exits on
/// clean EOF, protocol error, or `shutdown`.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let msg = match read_frame(&mut stream) {
            Ok(Some(m)) => m,
            Ok(None) | Err(_) => return,
        };
        let cmd = msg.get("cmd").and_then(Json::as_str).unwrap_or("");
        let sent = match cmd {
            "submit" => respond(&mut stream, handle_submit(shared, &msg)),
            "status" => respond(&mut stream, Ok(handle_status(shared))),
            "tail" => handle_tail(shared, &mut stream, &msg),
            "stats" => handle_stats(shared, &mut stream, &msg),
            "cancel" => respond(&mut stream, handle_cancel(shared, &msg)),
            "fetch" => respond(&mut stream, handle_fetch(shared, &msg)),
            "shutdown" => {
                let _ = respond(&mut stream, Ok(ok_response(vec![])));
                let _ = shared
                    .shutdown_req
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .send(());
                return;
            }
            other => respond(
                &mut stream,
                Err(PtError::InvalidConfig(format!("unknown command '{other}'"))),
            ),
        };
        if sent.is_err() {
            return; // peer went away mid-response
        }
    }
}

/// Write either the handler's response or its error as one frame.
fn respond(stream: &mut TcpStream, result: Result<Json, PtError>) -> Result<(), PtError> {
    let frame = match result {
        Ok(msg) => msg,
        Err(e) => error_response(&e.to_string()),
    };
    write_frame(stream, &frame)
}

fn job_id_of(msg: &Json) -> Result<u64, PtError> {
    msg.get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| PtError::InvalidConfig("'job' (integer) is required".into()))
}

fn handle_submit(shared: &Arc<Shared>, msg: &Json) -> Result<Json, PtError> {
    if shared.stop.load(Ordering::Acquire) {
        return Err(PtError::InvalidConfig("server is shutting down".into()));
    }
    let spec_value = msg
        .get("spec")
        .ok_or_else(|| PtError::InvalidConfig("'spec' (object) is required".into()))?;
    let spec = JobSpec::from_value(spec_value)?;
    spec.validate()?;
    let (id, dir) = {
        let mut st = shared.lock_state();
        let id = st.next_id;
        // admission can reject (never-fits) — do it before anything
        // touches the disk or the id counter
        st.scheduler.admit(id, spec.cores())?;
        st.next_id += 1;
        let dir = shared.jobs_dir.join(format!("job_{id:08}"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .map_err(|e| io_err(&dir, "creating job dir", &e))
            .and_then(|()| write_atomic(&dir.join("spec.json"), &spec.to_json()))
        {
            st.scheduler.withdraw(id);
            return Err(e);
        }
        st.jobs.insert(
            id,
            JobRecord {
                id,
                spec,
                dir: dir.clone(),
                state: JobState::Queued,
                error: None,
                progress: JobProgress::default(),
                cancel: CancelToken::new(),
                run_started_us: None,
                steps_at_run_start: 0,
            },
        );
        (id, dir)
    };
    let _ = dir;
    kick(shared);
    Ok(ok_response(vec![("job".to_string(), Json::Num(id as f64))]))
}

fn handle_status(shared: &Arc<Shared>) -> Json {
    let now_us = pt_trace::monotonic_us();
    let st = shared.lock_state();
    let jobs: Vec<Json> = st
        .jobs
        .values()
        .map(|j| {
            let mut pairs = vec![
                ("id".to_string(), Json::Num(j.id as f64)),
                ("name".to_string(), Json::Str(j.spec.name.clone())),
                ("state".to_string(), Json::Str(j.state.as_str().to_string())),
                (
                    "steps_done".to_string(),
                    Json::Num(j.progress.steps_done() as f64),
                ),
                ("steps".to_string(), Json::Num(j.spec.steps as f64)),
                ("cores".to_string(), Json::Num(j.spec.cores() as f64)),
            ];
            if let Some(rate) = j.steps_per_second(now_us) {
                pairs.push(("steps_per_second".to_string(), Json::Num(rate)));
            }
            if let Some(e) = &j.error {
                pairs.push(("error".to_string(), Json::Str(e.clone())));
            }
            Json::Obj(pairs)
        })
        .collect();
    let scheduler = Json::Obj(vec![
        (
            "budget_cores".to_string(),
            Json::Num(st.scheduler.budget() as f64),
        ),
        (
            "cores_in_use".to_string(),
            Json::Num(st.scheduler.in_use() as f64),
        ),
        (
            "queued".to_string(),
            Json::Num(st.scheduler.queued() as f64),
        ),
    ]);
    ok_response(vec![
        ("jobs".to_string(), Json::Arr(jobs)),
        ("scheduler".to_string(), scheduler),
        // top-level mirrors for one-field consumers (same lock, same
        // instant as the scheduler object above)
        (
            "queue_depth".to_string(),
            Json::Num(st.scheduler.queued() as f64),
        ),
        (
            "cores_in_use".to_string(),
            Json::Num(st.scheduler.in_use() as f64),
        ),
    ])
}

fn handle_cancel(shared: &Arc<Shared>, msg: &Json) -> Result<Json, PtError> {
    let id = job_id_of(msg)?;
    let (state, marker_dir) = {
        let mut st = shared.lock_state();
        let Some(before) = st.jobs.get(&id).map(|j| j.state.clone()) else {
            return Err(PtError::InvalidConfig(format!("unknown job {id}")));
        };
        match before {
            JobState::Queued => {
                st.scheduler.withdraw(id);
                let j = st
                    .jobs
                    .get_mut(&id)
                    .expect("invariant: presence of id was checked above");
                j.state = JobState::Cancelled;
                (JobState::Cancelled, Some(j.dir.clone()))
            }
            JobState::Running | JobState::Checkpointed => {
                // cooperative: the time loop honors it at the next step
                // boundary and writes a final snapshot first
                st.jobs[&id].cancel.cancel();
                (before, None)
            }
            terminal => (terminal, None),
        }
    };
    if let Some(dir) = marker_dir {
        let _ = write_atomic(&dir.join("cancelled"), "cancelled\n");
    }
    shared.cv.notify_all();
    kick(shared); // a withdrawn queue head may unblock others
    Ok(ok_response(vec![(
        "state".to_string(),
        Json::Str(state.as_str().to_string()),
    )]))
}

fn handle_fetch(shared: &Arc<Shared>, msg: &Json) -> Result<Json, PtError> {
    let id = job_id_of(msg)?;
    let (state, dir) = {
        let st = shared.lock_state();
        let Some(j) = st.jobs.get(&id) else {
            return Err(PtError::InvalidConfig(format!("unknown job {id}")));
        };
        (j.state.clone(), j.dir.clone())
    };
    if state != JobState::Done {
        return Err(PtError::InvalidConfig(format!(
            "job {id} is {}; results exist only for done jobs",
            state.as_str()
        )));
    }
    let path = dir.join("result.json");
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, "reading result", &e))?;
    let table = Json::parse(&text)?;
    Ok(ok_response(vec![("table".to_string(), table)]))
}

/// The streaming command. Each frame carries the rows past the client's
/// cursor for one channel; with `follow: true` the handler waits on the
/// condvar for more until the job is terminal.
fn handle_tail(shared: &Arc<Shared>, stream: &mut TcpStream, msg: &Json) -> Result<(), PtError> {
    let id = match job_id_of(msg) {
        Ok(id) => id,
        Err(e) => return respond(stream, Err(e)),
    };
    let channel = msg.get("channel").and_then(Json::as_str).unwrap_or("t");
    let mut cursor = msg.get("after").and_then(Json::as_u64).unwrap_or(0) as usize;
    let follow = msg.get("follow").and_then(Json::as_bool).unwrap_or(false);
    loop {
        enum Batch {
            Rows {
                t: Vec<f64>,
                values: Vec<f64>,
                state: &'static str,
                done: bool,
            },
            Gone(PtError),
        }
        let batch = {
            let mut st = shared.lock_state();
            loop {
                let Some(j) = st.jobs.get(&id) else {
                    break Batch::Gone(PtError::InvalidConfig(format!("unknown job {id}")));
                };
                let n = j.progress.steps_done();
                let terminal = j.state.is_terminal();
                if n > cursor || terminal || !follow {
                    let col = j.progress.channel(channel);
                    if col.is_none() && n > 0 && channel != "t" {
                        break Batch::Gone(PtError::InvalidConfig(format!(
                            "job {id} has no channel '{channel}' (available: {})",
                            j.progress.channel_names().join(", ")
                        )));
                    }
                    let hi = n.max(cursor);
                    let slice = |v: &[f64]| v.get(cursor..hi.min(v.len())).unwrap_or(&[]).to_vec();
                    break Batch::Rows {
                        t: slice(&j.progress.t),
                        values: col.map(slice).unwrap_or_default(),
                        state: j.state.as_str(),
                        done: terminal || !follow,
                    };
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
            }
        };
        match batch {
            Batch::Gone(e) => return respond(stream, Err(e)),
            Batch::Rows {
                t,
                values,
                state,
                done,
            } => {
                cursor += t.len();
                let nums = |v: Vec<f64>| Json::Arr(v.into_iter().map(Json::Num).collect());
                write_frame(
                    stream,
                    &ok_response(vec![
                        ("start".to_string(), Json::Num((cursor - t.len()) as f64)),
                        ("t".to_string(), nums(t)),
                        ("values".to_string(), nums(values)),
                        ("state".to_string(), Json::Str(state.to_string())),
                        ("done".to_string(), Json::Bool(done)),
                    ]),
                )?;
                if done {
                    return Ok(());
                }
            }
        }
    }
}

/// The live telemetry stream (`cmd: "stats"`): server-wide throughput,
/// queue depth and core utilization, plus a per-active-job step rate —
/// all timestamped on the pt-trace monotonic clock. Uses the same
/// condvar long-poll as `tail`: with `follow: true` a frame goes out
/// whenever total committed steps advance, until every job is terminal;
/// without it, exactly one frame. When tracing is armed the frame also
/// carries the global counter values (FFT batches, pair FFTs, wire
/// bytes, …) so a dashboard can difference them.
fn handle_stats(shared: &Arc<Shared>, stream: &mut TcpStream, msg: &Json) -> Result<(), PtError> {
    let follow = msg.get("follow").and_then(Json::as_bool).unwrap_or(false);
    // (t_us, steps_total) at the previous frame: the stream's cursor
    let mut prev: Option<(u64, usize)> = None;
    loop {
        let (frame, done) = {
            let mut st = shared.lock_state();
            loop {
                let steps_total: usize = st
                    .jobs
                    .values()
                    .map(|j| j.progress.steps_done())
                    .sum::<usize>();
                let all_terminal = st.jobs.values().all(|j| j.state.is_terminal());
                let advanced = prev.is_none_or(|(_, s)| steps_total > s);
                if advanced || all_terminal || !follow {
                    let now_us = pt_trace::monotonic_us();
                    let rate = match prev {
                        Some((t0, s0)) if now_us > t0 => {
                            (steps_total - s0) as f64 / ((now_us - t0) as f64 / 1e6)
                        }
                        _ => 0.0,
                    };
                    prev = Some((now_us, steps_total));
                    let jobs: Vec<Json> = st
                        .jobs
                        .values()
                        .filter(|j| j.state.is_active())
                        .map(|j| {
                            Json::Obj(vec![
                                ("id".to_string(), Json::Num(j.id as f64)),
                                ("state".to_string(), Json::Str(j.state.as_str().to_string())),
                                (
                                    "steps_done".to_string(),
                                    Json::Num(j.progress.steps_done() as f64),
                                ),
                                (
                                    "steps_per_second".to_string(),
                                    Json::Num(j.steps_per_second(now_us).unwrap_or(0.0)),
                                ),
                            ])
                        })
                        .collect();
                    let done = all_terminal || !follow;
                    let mut pairs = vec![
                        ("t_us".to_string(), Json::Num(now_us as f64)),
                        (
                            "queue_depth".to_string(),
                            Json::Num(st.scheduler.queued() as f64),
                        ),
                        (
                            "cores_in_use".to_string(),
                            Json::Num(st.scheduler.in_use() as f64),
                        ),
                        (
                            "budget_cores".to_string(),
                            Json::Num(st.scheduler.budget() as f64),
                        ),
                        ("steps_total".to_string(), Json::Num(steps_total as f64)),
                        ("steps_per_second".to_string(), Json::Num(rate)),
                        ("jobs".to_string(), Json::Arr(jobs)),
                        ("done".to_string(), Json::Bool(done)),
                    ];
                    if pt_trace::is_enabled() {
                        let counters = pt_trace::counters()
                            .iter()
                            .map(|(name, v)| (name.to_string(), Json::Num(v as f64)))
                            .collect();
                        pairs.push(("counters".to_string(), Json::Obj(counters)));
                    }
                    break (ok_response(pairs), done);
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
            }
        };
        write_frame(stream, &frame)?;
        if done {
            return Ok(());
        }
    }
}
