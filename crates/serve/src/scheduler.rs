//! Core-packing job scheduler: FIFO admission with bounded backfill
//! against a fixed server-wide core budget.
//!
//! Every job declares a [`RankLayout`](pt_par::RankLayout)-derived core
//! width at submit time. The scheduler packs concurrently running jobs so
//! their summed widths never exceed the budget (asserted on every
//! transition), serves the queue first-in-first-out, and lets narrow jobs
//! *backfill* past a wide head that does not currently fit — but only a
//! bounded number of times per head, so a wide job can be delayed by at
//! most [`MAX_BACKFILLS_PAST_HEAD`] opportunists before the queue holds
//! until enough cores drain for it. That bound is what turns "FIFO with
//! backfill" into a no-starvation guarantee.
//!
//! The scheduler is pure bookkeeping (no threads, no clock): the server
//! calls [`CorePackingScheduler::start_batch`] whenever capacity changes
//! and spawns whatever comes back.

use pt_ham::PtError;
use std::collections::VecDeque;

/// How many jobs may jump a blocked queue head before backfilling pauses
/// for that head. Small enough that a wide job waits O(1) opportunists,
/// large enough to keep the machine busy while it drains.
pub const MAX_BACKFILLS_PAST_HEAD: u32 = 8;

/// FIFO + bounded-backfill core packer. Jobs are identified by opaque
/// `u64` ids; widths are core counts (`RankLayout::cores()`).
#[derive(Debug)]
pub struct CorePackingScheduler {
    budget: usize,
    in_use: usize,
    queue: VecDeque<(u64, usize)>,
    /// The head job id the last `start_batch` could not fit, if any.
    blocked_head: Option<u64>,
    /// Jobs started past `blocked_head` since it became the head.
    backfills_past_head: u32,
}

impl CorePackingScheduler {
    /// A scheduler managing `budget_cores` cores (must be nonzero).
    pub fn new(budget_cores: usize) -> Result<Self, PtError> {
        if budget_cores == 0 {
            return Err(PtError::InvalidConfig(
                "scheduler core budget must be at least 1".into(),
            ));
        }
        Ok(CorePackingScheduler {
            budget: budget_cores,
            in_use: 0,
            queue: VecDeque::new(),
            blocked_head: None,
            backfills_past_head: 0,
        })
    }

    /// The configured core budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Cores currently charged to running jobs.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Queued (not yet started) job count.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Admit a job to the queue. A job that could *never* run — zero
    /// cores or wider than the whole budget — is rejected up front with a
    /// typed error rather than left to starve in the queue.
    pub fn admit(&mut self, id: u64, cores: usize) -> Result<(), PtError> {
        if cores == 0 {
            return Err(PtError::InvalidConfig(format!(
                "job {id}: a job must occupy at least 1 core"
            )));
        }
        if cores > self.budget {
            return Err(PtError::InvalidConfig(format!(
                "job {id}: needs {cores} cores but the server budget is {} — it can never run",
                self.budget
            )));
        }
        self.queue.push_back((id, cores));
        Ok(())
    }

    /// Remove a still-queued job (cancellation). Returns `true` if it was
    /// found in the queue (running jobs are not the scheduler's to stop).
    pub fn withdraw(&mut self, id: u64) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&(qid, _)| qid != id);
        if self.blocked_head == Some(id) {
            self.blocked_head = None;
            self.backfills_past_head = 0;
        }
        self.queue.len() != before
    }

    /// Return `cores` to the pool when a job finishes, fails or is
    /// cancelled while running.
    pub fn release(&mut self, cores: usize) {
        debug_assert!(cores <= self.in_use, "released more cores than in use");
        self.in_use = self.in_use.saturating_sub(cores);
    }

    /// Start every job that may start now, in FIFO-with-bounded-backfill
    /// order. Returns `(id, cores)` pairs the caller must actually spawn;
    /// their cores are already charged. Never oversubscribes: the sum of
    /// running widths stays ≤ budget (checked with a real assert — this
    /// invariant is cheap and load-bearing).
    pub fn start_batch(&mut self) -> Vec<(u64, usize)> {
        let mut started = Vec::new();
        loop {
            let Some(&(head_id, head_cores)) = self.queue.front() else {
                self.blocked_head = None;
                self.backfills_past_head = 0;
                break;
            };
            // New head since we last blocked? Reset the backfill meter.
            if self.blocked_head != Some(head_id) {
                self.blocked_head = None;
                self.backfills_past_head = 0;
            }
            if self.in_use + head_cores <= self.budget {
                self.queue.pop_front();
                self.in_use += head_cores;
                self.blocked_head = None;
                self.backfills_past_head = 0;
                started.push((head_id, head_cores));
                continue;
            }
            // Head doesn't fit: try to backfill exactly one later job, if
            // the head's patience allows, then re-evaluate.
            self.blocked_head = Some(head_id);
            if self.backfills_past_head >= MAX_BACKFILLS_PAST_HEAD {
                break;
            }
            let slot = self
                .queue
                .iter()
                .skip(1)
                .position(|&(_, c)| self.in_use + c <= self.budget)
                .map(|i| i + 1);
            match slot {
                Some(i) => {
                    let (id, cores) = self
                        .queue
                        .remove(i)
                        .expect("invariant: position() returned an in-bounds index");
                    self.in_use += cores;
                    self.backfills_past_head += 1;
                    started.push((id, cores));
                }
                None => break,
            }
        }
        assert!(
            self.in_use <= self.budget,
            "scheduler oversubscribed: {} in use > {} budget",
            self.in_use,
            self.budget
        );
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic RNG for the randomized packing test (no
    /// external dep, no wall clock).
    struct XorShift64(u64);
    impl XorShift64 {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn never_fits_is_rejected_up_front() {
        let mut s = CorePackingScheduler::new(4).unwrap();
        assert!(matches!(s.admit(1, 5), Err(PtError::InvalidConfig(_))));
        assert!(matches!(s.admit(2, 0), Err(PtError::InvalidConfig(_))));
        // exactly the budget is fine
        s.admit(3, 4).unwrap();
        assert_eq!(s.start_batch(), vec![(3, 4)]);
        assert!(CorePackingScheduler::new(0).is_err());
    }

    #[test]
    fn fifo_when_everything_fits() {
        let mut s = CorePackingScheduler::new(8).unwrap();
        for id in 0..4 {
            s.admit(id, 2).unwrap();
        }
        assert_eq!(s.start_batch(), vec![(0, 2), (1, 2), (2, 2), (3, 2)]);
        assert_eq!(s.in_use(), 8);
        assert!(s.start_batch().is_empty());
    }

    #[test]
    fn backfill_lets_narrow_jobs_slip_past_a_wide_head() {
        let mut s = CorePackingScheduler::new(4).unwrap();
        s.admit(0, 3).unwrap();
        assert_eq!(s.start_batch(), vec![(0, 3)]);
        // wide head (4) cannot fit beside the running 3-core job, but the
        // 1-core job behind it can.
        s.admit(1, 4).unwrap();
        s.admit(2, 1).unwrap();
        assert_eq!(s.start_batch(), vec![(2, 1)]);
        assert_eq!(s.in_use(), 4);
        // drain everything → the wide head finally runs, alone.
        s.release(3);
        assert!(s.start_batch().is_empty()); // 1 in use, head needs 4
        s.release(1);
        assert_eq!(s.start_batch(), vec![(1, 4)]);
    }

    #[test]
    fn bounded_backfill_prevents_starvation() {
        // One running 1-core job pins the wide head out; an endless
        // supply of 1-core jobs must stop jumping it after the bound.
        let mut s = CorePackingScheduler::new(4).unwrap();
        s.admit(0, 1).unwrap();
        assert_eq!(s.start_batch(), vec![(0, 1)]);
        s.admit(1, 4).unwrap(); // wide head, cannot fit while job 0 runs
        let n_narrow = MAX_BACKFILLS_PAST_HEAD + 3;
        for i in 0..n_narrow {
            s.admit(100 + u64::from(i), 1).unwrap();
        }
        let mut jumped = 0usize;
        // Simulate: each started narrow job finishes immediately and we
        // re-run start_batch — the classic starvation loop.
        loop {
            let batch = s.start_batch();
            if batch.is_empty() {
                break;
            }
            for &(id, cores) in &batch {
                assert_ne!(id, 1, "head started while a narrow job was running");
                jumped += 1;
                let _ = cores; // release only after counting this round
            }
            // keep job 0 running; finish the narrow jobs
            for &(_, cores) in &batch {
                s.release(cores);
            }
        }
        assert_eq!(jumped as u32, MAX_BACKFILLS_PAST_HEAD);
        // head's turn once the long-running job drains
        s.release(1);
        let batch = s.start_batch();
        assert_eq!(batch, vec![(1, 4)]);
        // and after it, the remaining narrow jobs resume FIFO
        s.release(4);
        let rest = s.start_batch();
        assert_eq!(rest.len() as u32, n_narrow - MAX_BACKFILLS_PAST_HEAD);
        assert!(rest.windows(2).all(|w| w[0].0 < w[1].0), "FIFO order");
    }

    #[test]
    fn withdraw_unblocks_the_queue() {
        let mut s = CorePackingScheduler::new(4).unwrap();
        s.admit(0, 3).unwrap();
        assert_eq!(s.start_batch(), vec![(0, 3)]);
        s.admit(1, 4).unwrap();
        s.admit(2, 1).unwrap();
        assert_eq!(s.start_batch(), vec![(2, 1)]); // 1 backfilled past 4-wide head
        assert!(s.withdraw(1));
        assert!(!s.withdraw(1)); // already gone
        s.release(1);
        s.admit(3, 1).unwrap();
        // head is gone; FIFO resumes without waiting for a drain
        assert_eq!(s.start_batch(), vec![(3, 1)]);
    }

    #[test]
    fn randomized_packing_never_oversubscribes() {
        let mut rng = XorShift64(0x9e37_79b9_7f4a_7c15);
        for trial in 0..50 {
            let budget = 1 + (rng.next() % 16) as usize;
            let mut s = CorePackingScheduler::new(budget).unwrap();
            let mut running: Vec<(u64, usize)> = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..200 {
                match rng.next() % 3 {
                    0 => {
                        let cores = 1 + (rng.next() as usize % (budget + 2));
                        let res = s.admit(next_id, cores);
                        assert_eq!(res.is_err(), cores > budget);
                        next_id += 1;
                    }
                    1 if !running.is_empty() => {
                        let i = rng.next() as usize % running.len();
                        let (_, cores) = running.swap_remove(i);
                        s.release(cores);
                    }
                    _ => {}
                }
                let batch = s.start_batch();
                running.extend(batch);
                let used: usize = running.iter().map(|&(_, c)| c).sum();
                assert_eq!(used, s.in_use(), "trial {trial}: accounting drift");
                assert!(used <= budget, "trial {trial}: oversubscribed");
            }
        }
    }
}
