//! `JobSpec` — the JSON description of one simulation job.
//!
//! A spec is everything the server needs to (re)create a run from
//! nothing: the Kohn–Sham system (supercell, cutoff, functional), the
//! laser coupling, the propagation window, the checkpoint cadence and the
//! `ranks × threads_per_rank` layout the scheduler charges against its
//! core budget. Specs travel as JSON (parsed with [`pt_io::Json`], no
//! serde) and are persisted verbatim into the job directory on submit —
//! after a server crash the spec file plus the newest valid snapshot are
//! sufficient to finish the job bit-exactly.

use pt_core::{LaserPulse, Simulation, SimulationBuilder};
use pt_ham::{DistributedConfig, ExchangeMode, HybridConfig, KsSystem, PtError};
use pt_io::Json;
use pt_lattice::silicon_cubic_supercell;
use pt_num::units::attosecond_to_au;
use pt_par::{Parallelism, RankLayout};
use pt_scf::{scf_loop, ScfOptions};
use pt_xc::XcKind;

/// The Kohn–Sham system a job propagates (silicon supercell family —
/// the lattice the reproduction ships).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    /// Cubic supercell repetitions along x, y, z.
    pub supercell: [usize; 3],
    /// Plane-wave cutoff (Ha).
    pub ecut: f64,
    /// Base functional: `"lda"` or `"pbe"`.
    pub xc: XcKind,
    /// Whether to layer screened hybrid exchange (HSE06) on top.
    pub hybrid: bool,
    /// Occupied-band override (`None` derives bands from the
    /// pseudopotential electron count).
    pub bands: Option<usize>,
    /// Exchange evaluation during propagation: full pair-FFT Fock, or the
    /// ACE projector (optionally with multiple time stepping). JSON keys:
    /// `"exchange": "full" | "ace" | "ace_mts"` plus
    /// `"ace_refresh_interval"` / `"ace_inner_substeps"`; absent → full.
    pub exchange: ExchangeMode,
}

/// Laser coupling (the paper's 380 nm Gaussian pulse family).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaserSpec {
    /// Peak vector potential (a.u.).
    pub a0: f64,
    /// Pulse center (attoseconds).
    pub t0_as: f64,
    /// Gaussian width (attoseconds).
    pub sigma_as: f64,
}

/// One simulation job, JSON-round-trippable.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name (shown in `status`).
    pub name: String,
    /// The system to build and propagate.
    pub system: SystemSpec,
    /// Optional laser coupling.
    pub laser: Option<LaserSpec>,
    /// Time step (attoseconds).
    pub dt_as: f64,
    /// Steps to propagate.
    pub steps: usize,
    /// Emit a rolling snapshot every this many steps.
    pub checkpoint_every: usize,
    /// The ranks × threads layout the job occupies while running.
    pub layout: RankLayout,
}

impl JobSpec {
    /// Parse and [validate](JobSpec::validate) a spec from JSON text.
    pub fn from_json(text: &str) -> Result<JobSpec, PtError> {
        let v = Json::parse(text)?;
        let spec = Self::from_value(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Decode from an already-parsed JSON value.
    pub fn from_value(v: &Json) -> Result<JobSpec, PtError> {
        let bad = |what: &str| PtError::InvalidConfig(format!("job spec: {what}"));
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("'name' (string) is required"))?
            .to_string();
        let sys = v
            .get("system")
            .ok_or_else(|| bad("'system' (object) is required"))?;
        let supercell = match sys.get("supercell").and_then(Json::as_arr) {
            Some([a, b, c]) => {
                let d = |j: &Json| j.as_u64().map(|x| x as usize);
                match (d(a), d(b), d(c)) {
                    (Some(a), Some(b), Some(c)) => [a, b, c],
                    _ => return Err(bad("'system.supercell' entries must be integers")),
                }
            }
            None => [1, 1, 1],
            _ => return Err(bad("'system.supercell' must be a 3-array")),
        };
        let ecut = sys
            .get("ecut")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("'system.ecut' (number) is required"))?;
        let xc = match sys.get("xc").and_then(Json::as_str) {
            Some("lda") | None => XcKind::Lda,
            Some("pbe") => XcKind::Pbe,
            Some(other) => return Err(bad(&format!("unknown xc '{other}' (lda|pbe)"))),
        };
        let hybrid = match sys.get("hybrid") {
            None => false,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| bad("'system.hybrid' must be a boolean"))?,
        };
        let bands = match sys.get("bands") {
            None => None,
            Some(j) => Some(
                j.as_u64()
                    .ok_or_else(|| bad("'system.bands' must be an integer"))?
                    as usize,
            ),
        };
        let sys_int = |key: &str, default: u64| match sys.get(key) {
            None => Ok(default),
            Some(j) => j
                .as_u64()
                .filter(|&x| x >= 1)
                .ok_or_else(|| bad(&format!("'system.{key}' must be a positive integer"))),
        };
        let exchange = match sys.get("exchange").and_then(Json::as_str) {
            Some("full") | None => ExchangeMode::Full,
            Some("ace") => ExchangeMode::Ace {
                refresh_interval: sys_int("ace_refresh_interval", 1)? as usize,
            },
            Some("ace_mts") => ExchangeMode::AceMts {
                refresh_interval: sys_int("ace_refresh_interval", 1)? as usize,
                inner_substeps: sys_int("ace_inner_substeps", 1)? as usize,
            },
            Some(other) => {
                return Err(bad(&format!(
                    "unknown exchange '{other}' (full|ace|ace_mts)"
                )))
            }
        };
        let laser = match v.get("laser") {
            None | Some(Json::Null) => None,
            Some(l) => {
                let f = |key: &str| {
                    l.get(key).and_then(Json::as_f64).ok_or_else(|| {
                        bad(&format!(
                            "'laser.{key}' (number) is required when laser is set"
                        ))
                    })
                };
                Some(LaserSpec {
                    a0: f("a0")?,
                    t0_as: f("t0_as")?,
                    sigma_as: f("sigma_as")?,
                })
            }
        };
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("'{key}' (number) is required")))
        };
        let int = |key: &str, default: u64| match v.get(key) {
            None => Ok(default),
            Some(j) => j
                .as_u64()
                .ok_or_else(|| bad(&format!("'{key}' must be a nonnegative integer"))),
        };
        let dt_as = num("dt_as")?;
        let steps = v
            .get("steps")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("'steps' (integer) is required"))? as usize;
        let checkpoint_every = int("checkpoint_every", 1)? as usize;
        let ranks = int("ranks", 1)? as usize;
        let threads_per_rank = int("threads_per_rank", 1)? as usize;
        Ok(JobSpec {
            name,
            system: SystemSpec {
                supercell,
                ecut,
                xc,
                hybrid,
                bands,
                exchange,
            },
            laser,
            dt_as,
            steps,
            checkpoint_every,
            layout: RankLayout {
                ranks,
                threads_per_rank,
            },
        })
    }

    /// Encode as a JSON value ([`JobSpec::from_value`] inverts it).
    pub fn to_value(&self) -> Json {
        let mut sys = vec![
            (
                "supercell".to_string(),
                Json::Arr(
                    self.system
                        .supercell
                        .iter()
                        .map(|&x| Json::Num(x as f64))
                        .collect(),
                ),
            ),
            ("ecut".to_string(), Json::Num(self.system.ecut)),
            (
                "xc".to_string(),
                Json::Str(match self.system.xc {
                    XcKind::Lda => "lda".into(),
                    XcKind::Pbe => "pbe".into(),
                }),
            ),
            ("hybrid".to_string(), Json::Bool(self.system.hybrid)),
        ];
        if let Some(nb) = self.system.bands {
            sys.push(("bands".to_string(), Json::Num(nb as f64)));
        }
        match self.system.exchange {
            ExchangeMode::Full => {} // the default; absent key round-trips
            ExchangeMode::Ace { refresh_interval } => {
                sys.push(("exchange".to_string(), Json::Str("ace".into())));
                sys.push((
                    "ace_refresh_interval".to_string(),
                    Json::Num(refresh_interval as f64),
                ));
            }
            ExchangeMode::AceMts {
                refresh_interval,
                inner_substeps,
            } => {
                sys.push(("exchange".to_string(), Json::Str("ace_mts".into())));
                sys.push((
                    "ace_refresh_interval".to_string(),
                    Json::Num(refresh_interval as f64),
                ));
                sys.push((
                    "ace_inner_substeps".to_string(),
                    Json::Num(inner_substeps as f64),
                ));
            }
        }
        let mut pairs = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("system".to_string(), Json::Obj(sys)),
        ];
        if let Some(l) = &self.laser {
            pairs.push((
                "laser".to_string(),
                Json::Obj(vec![
                    ("a0".to_string(), Json::Num(l.a0)),
                    ("t0_as".to_string(), Json::Num(l.t0_as)),
                    ("sigma_as".to_string(), Json::Num(l.sigma_as)),
                ]),
            ));
        }
        pairs.extend([
            ("dt_as".to_string(), Json::Num(self.dt_as)),
            ("steps".to_string(), Json::Num(self.steps as f64)),
            (
                "checkpoint_every".to_string(),
                Json::Num(self.checkpoint_every as f64),
            ),
            ("ranks".to_string(), Json::Num(self.layout.ranks as f64)),
            (
                "threads_per_rank".to_string(),
                Json::Num(self.layout.threads_per_rank as f64),
            ),
        ]);
        Json::Obj(pairs)
    }

    /// Serialize as JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().dump()
    }

    /// Reject malformed specs up front with a typed error — before they
    /// reach the queue.
    pub fn validate(&self) -> Result<(), PtError> {
        if self.name.is_empty() {
            return Err(PtError::InvalidConfig(
                "job spec: name must be nonempty".into(),
            ));
        }
        if !(self.system.ecut.is_finite() && self.system.ecut > 0.0) {
            return Err(PtError::InvalidConfig(format!(
                "job spec: ecut must be positive, got {}",
                self.system.ecut
            )));
        }
        if self.system.supercell.contains(&0) {
            return Err(PtError::InvalidConfig(
                "job spec: supercell extents must be nonzero".into(),
            ));
        }
        self.system.exchange.validate()?;
        if self.system.exchange != ExchangeMode::Full && !self.system.hybrid {
            return Err(PtError::InvalidConfig(
                "job spec: ACE exchange modes require 'system.hybrid': true".into(),
            ));
        }
        if !(self.dt_as.is_finite() && self.dt_as > 0.0) {
            return Err(PtError::InvalidConfig(format!(
                "job spec: dt_as must be positive, got {}",
                self.dt_as
            )));
        }
        if self.steps == 0 {
            return Err(PtError::InvalidConfig(
                "job spec: steps must be at least 1".into(),
            ));
        }
        if self.checkpoint_every == 0 {
            return Err(PtError::InvalidConfig(
                "job spec: checkpoint_every must be at least 1".into(),
            ));
        }
        self.layout.validate().map_err(PtError::InvalidConfig)?;
        Ok(())
    }

    /// Cores this job occupies while running (`ranks × threads_per_rank`).
    pub fn cores(&self) -> usize {
        self.layout.cores()
    }

    /// Time step in atomic units.
    pub fn dt_au(&self) -> f64 {
        attosecond_to_au(self.dt_as)
    }

    /// The laser pulse, if configured.
    pub fn laser_pulse(&self) -> Option<LaserPulse> {
        self.laser.map(|l| {
            LaserPulse::paper_380nm(
                l.a0,
                attosecond_to_au(l.t0_as),
                attosecond_to_au(l.sigma_as),
            )
        })
    }

    /// Build the Kohn–Sham system this spec describes. Serial jobs
    /// (`ranks == 1`) carry their thread width as the system's pool so
    /// SCF and propagation both run at the scheduled width; distributed
    /// jobs get a [`DistributedConfig`] (each rank pins its own pool).
    pub fn build_system(&self) -> Result<KsSystem, PtError> {
        let [a, b, c] = self.system.supercell;
        let mut builder = KsSystem::builder(silicon_cubic_supercell(a, b, c))
            .ecut(self.system.ecut)
            .xc(self.system.xc);
        if self.system.hybrid {
            builder = builder.hybrid(HybridConfig::hse06());
        }
        builder = builder.exchange_mode(self.system.exchange);
        if let Some(nb) = self.system.bands {
            builder = builder.occupations(vec![2.0; nb]);
        }
        if self.layout.ranks > 1 {
            builder = builder.distributed(DistributedConfig::new(
                self.layout.ranks,
                self.layout.threads_per_rank,
            ));
        } else {
            builder = builder.parallelism(Parallelism::threads(self.layout.threads_per_rank));
        }
        builder.build()
    }

    /// Converge the ground state and assemble a fresh [`Simulation`] for
    /// this spec (no checkpointing armed — callers add policies/taps).
    /// This is THE definition of what a job computes: the server's job
    /// runner and any reference calculation must both go through it so
    /// bit-exactness comparisons compare like with like.
    pub fn build_fresh_simulation<'a>(&self, sys: &'a KsSystem) -> Result<Simulation<'a>, PtError> {
        let gs = scf_loop(sys, ScfOptions::default())?;
        let mut builder = SimulationBuilder::new(sys)
            .initial_orbitals(gs.orbitals)
            .dt(self.dt_au())
            .steps(self.steps)
            .standard_observers();
        if let Some(laser) = self.laser_pulse() {
            builder = builder.laser(laser);
        }
        builder.build()
    }

    /// Run the spec start to finish in-process with no server, no
    /// checkpoints and no streaming — the uninterrupted reference a
    /// served job's final series must match bit-for-bit.
    pub fn run_reference(&self) -> Result<pt_core::TimeSeries, PtError> {
        let sys = self.build_system()?;
        let mut sim = self.build_fresh_simulation(&sys)?;
        let series = sim.run();
        drop(sim);
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            system: SystemSpec {
                supercell: [1, 1, 1],
                ecut: 2.0,
                xc: XcKind::Lda,
                hybrid: false,
                bands: None,
                exchange: ExchangeMode::Full,
            },
            laser: Some(LaserSpec {
                a0: 0.02,
                t0_as: 200.0,
                sigma_as: 100.0,
            }),
            dt_as: 25.0,
            steps: 3,
            checkpoint_every: 1,
            layout: RankLayout::new(1, 1),
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec("roundtrip");
        let text = spec.to_json();
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(spec, back);
        // hybrid distributed variant too
        let mut h = tiny_spec("h");
        h.system.hybrid = true;
        h.system.bands = Some(4);
        h.system.xc = XcKind::Pbe;
        h.laser = None;
        h.layout = RankLayout::new(2, 2);
        assert_eq!(JobSpec::from_json(&h.to_json()).unwrap(), h);
        assert_eq!(h.cores(), 4);
        // ACE variants round-trip too
        h.system.exchange = ExchangeMode::Ace {
            refresh_interval: 4,
        };
        assert_eq!(JobSpec::from_json(&h.to_json()).unwrap(), h);
        h.system.exchange = ExchangeMode::AceMts {
            refresh_interval: 2,
            inner_substeps: 3,
        };
        assert_eq!(JobSpec::from_json(&h.to_json()).unwrap(), h);
    }

    #[test]
    fn exchange_spec_parses_defaults_and_rejects_misuse() {
        let spec = JobSpec::from_json(
            r#"{"name": "a", "system": {"ecut": 2.0, "hybrid": true, "exchange": "ace"},
                "dt_as": 25.0, "steps": 2}"#,
        )
        .unwrap();
        assert_eq!(
            spec.system.exchange,
            ExchangeMode::Ace {
                refresh_interval: 1
            }
        );
        for bad in [
            // ACE without hybrid: nothing to compress
            r#"{"name": "a", "system": {"ecut": 2.0, "exchange": "ace"}, "dt_as": 25.0, "steps": 2}"#,
            // unknown mode
            r#"{"name": "a", "system": {"ecut": 2.0, "hybrid": true, "exchange": "exx"}, "dt_as": 25.0, "steps": 2}"#,
            // zero interval
            r#"{"name": "a", "system": {"ecut": 2.0, "hybrid": true, "exchange": "ace", "ace_refresh_interval": 0}, "dt_as": 25.0, "steps": 2}"#,
        ] {
            assert!(
                matches!(JobSpec::from_json(bad), Err(PtError::InvalidConfig(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn minimal_spec_text_applies_defaults() {
        let spec = JobSpec::from_json(
            r#"{"name": "min", "system": {"ecut": 2.0}, "dt_as": 25.0, "steps": 2}"#,
        )
        .unwrap();
        assert_eq!(spec.system.supercell, [1, 1, 1]);
        assert_eq!(spec.system.xc, XcKind::Lda);
        assert!(!spec.system.hybrid);
        assert_eq!(spec.checkpoint_every, 1);
        assert_eq!(spec.layout, RankLayout::new(1, 1));
        assert!(spec.laser.is_none());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"name": "x"}"#,
            r#"{"name": "x", "system": {"ecut": 2.0}, "dt_as": 25.0}"#,
            r#"{"name": "x", "system": {"ecut": 2.0}, "dt_as": 25.0, "steps": 0}"#,
            r#"{"name": "x", "system": {"ecut": -1.0}, "dt_as": 25.0, "steps": 2}"#,
            r#"{"name": "x", "system": {"ecut": 2.0, "xc": "b3lyp"}, "dt_as": 25.0, "steps": 2}"#,
            r#"{"name": "x", "system": {"ecut": 2.0}, "dt_as": 25.0, "steps": 2, "ranks": 0}"#,
            r#"{"name": "", "system": {"ecut": 2.0}, "dt_as": 25.0, "steps": 2}"#,
            r#"{"name": "x", "system": {"ecut": 2.0}, "dt_as": 25.0, "steps": 2, "checkpoint_every": 0}"#,
        ] {
            assert!(
                matches!(JobSpec::from_json(bad), Err(PtError::InvalidConfig(_))),
                "{bad}"
            );
        }
    }
}
