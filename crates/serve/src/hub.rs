//! Per-job streaming hub: the job state machine, the incrementally-built
//! observable record every `tail` reader broadcasts from, and the typed
//! events jobs publish into the server's mpsc fan-in.
//!
//! Running jobs do not talk to clients. Each job's step tap sends
//! [`JobEvent`]s down a cloned channel sender (Collector-style fan-in:
//! many producers, one pump); the server's event pump appends them to the
//! job's [`JobProgress`] under the state lock and notifies a condvar.
//! `tail` handlers are pull-based broadcast consumers — each keeps its own
//! cursor into the progress columns, so any number of live tails can
//! follow one job without backpressure into the time loop.

use crate::spec::JobSpec;
use pt_core::{CancelToken, StepStats, StepUpdate, TimeSeries};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The job state machine:
/// `queued → running → checkpointed → done | failed | cancelled`
/// (`checkpointed` is "running, with at least one durable snapshot on
/// disk" — from there a server crash costs at most `checkpoint_every`
/// steps). `failed` and `cancelled` can also be entered from `queued`
/// (spec rejected at start, cancel before start).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for cores.
    Queued,
    /// Started; no durable snapshot yet.
    Running,
    /// Running with at least one durable snapshot behind it.
    Checkpointed,
    /// Completed; `result.json` is on disk.
    Done,
    /// Errored or panicked (message in [`JobRecord::error`]).
    Failed,
    /// Cancelled by request (a final snapshot is on disk if the job had
    /// started and checkpointing was armed).
    Cancelled,
}

impl JobState {
    /// Wire name (`status` responses, marker-file content).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Checkpointed => "checkpointed",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::as_str`].
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "checkpointed" => JobState::Checkpointed,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Whether the job currently occupies cores.
    pub fn is_active(&self) -> bool {
        matches!(self, JobState::Running | JobState::Checkpointed)
    }
}

/// The incrementally-built observable record of one job — same columns as
/// the final `TimeSeries` table (`t`, `a_x/y/z`, per-step stats, every
/// observer channel), grown one step at a time by the event pump.
#[derive(Clone, Debug, Default)]
pub struct JobProgress {
    /// Post-step times (a.u.).
    pub t: Vec<f64>,
    /// Every other column, keyed by channel name.
    pub channels: BTreeMap<String, Vec<f64>>,
}

impl JobProgress {
    /// Steps recorded so far.
    pub fn steps_done(&self) -> usize {
        self.t.len()
    }

    /// Append one step's samples.
    pub fn push_step(&mut self, t: f64, samples: &[(String, f64)]) {
        self.t.push(t);
        for (name, value) in samples {
            self.channels.entry(name.clone()).or_default().push(*value);
        }
    }

    /// A column by name; `"t"` serves the time column itself.
    pub fn channel(&self, name: &str) -> Option<&[f64]> {
        if name == "t" {
            return Some(&self.t);
        }
        self.channels.get(name).map(Vec::as_slice)
    }

    /// Names of every available column (`t` first).
    pub fn channel_names(&self) -> Vec<&str> {
        let mut names = vec!["t"];
        names.extend(self.channels.keys().map(String::as_str));
        names
    }

    /// Rebuild progress from an already-recorded series — used to
    /// republish the restored prefix of a resumed job and to rehydrate
    /// completed jobs after a server restart.
    pub fn absorb_series(&mut self, series: &TimeSeries) {
        for i in 0..series.len() {
            let mut samples = stats_samples(series.a_field[i], &series.stats[i]);
            for name in series.channel_names() {
                if let Some(col) = series.channel(name) {
                    samples.push((name.to_string(), col[i]));
                }
            }
            self.push_step(series.t[i], &samples);
        }
    }
}

/// The non-observer columns of one step, named exactly as
/// `TimeSeries::to_table` names them — so live-streamed columns and the
/// final fetched table agree.
pub fn stats_samples(a_field: [f64; 3], stats: &StepStats) -> Vec<(String, f64)> {
    vec![
        ("a_x".to_string(), a_field[0]),
        ("a_y".to_string(), a_field[1]),
        ("a_z".to_string(), a_field[2]),
        ("scf_iterations".to_string(), stats.scf_iterations as f64),
        ("h_applications".to_string(), stats.h_applications as f64),
        ("rho_residual".to_string(), stats.rho_residual),
        (
            "converged".to_string(),
            if stats.converged { 1.0 } else { 0.0 },
        ),
    ]
}

/// Flatten a [`StepUpdate`] into the full column sample list for one step
/// (stats columns + every observer sample).
pub fn update_samples(u: &StepUpdate<'_>) -> Vec<(String, f64)> {
    let mut samples = stats_samples(u.a_field, u.stats);
    samples.extend(u.samples.iter().cloned());
    samples
}

/// One tracked job: spec, on-disk home, live state and progress.
#[derive(Debug)]
pub struct JobRecord {
    /// Server-assigned id (monotonic, stable across restarts).
    pub id: u64,
    /// The submitted spec (persisted as `spec.json` in [`JobRecord::dir`]).
    pub spec: JobSpec,
    /// The job's directory: spec, rolling snapshots, result, markers.
    pub dir: PathBuf,
    /// Current state-machine state.
    pub state: JobState,
    /// Failure message when [`JobState::Failed`].
    pub error: Option<String>,
    /// Live observable record (broadcast source for `tail`).
    pub progress: JobProgress,
    /// Trip to request cooperative cancellation of a running job.
    pub cancel: CancelToken,
    /// `pt_trace::monotonic_us()` when the current run attempt started
    /// (`None` until the job first reaches `running`). Telemetry only —
    /// never serialized, never bit-compared.
    pub run_started_us: Option<u64>,
    /// Steps already in `progress` when the attempt started (the restored
    /// prefix of a resumed job) — subtracted out of the step rate so a
    /// resume doesn't claim its restored steps as throughput.
    pub steps_at_run_start: usize,
}

impl JobRecord {
    /// Steps per wall-clock second of the current run attempt, measured
    /// on the pt-trace monotonic clock (`now_us` is passed in so this
    /// crate never reads a clock itself). `None` until the job is active
    /// and has committed at least one new step.
    pub fn steps_per_second(&self, now_us: u64) -> Option<f64> {
        let start = self.run_started_us?;
        if !self.state.is_active() {
            return None;
        }
        let done = self
            .progress
            .steps_done()
            .saturating_sub(self.steps_at_run_start);
        let dt = now_us.saturating_sub(start) as f64 / 1e6;
        (dt > 0.0 && done > 0).then(|| done as f64 / dt)
    }
}

/// Events jobs publish into the server's single-consumer pump.
#[derive(Debug)]
pub enum JobEvent {
    /// One committed step, with every column sample. `durable` reports
    /// whether a snapshot covering some earlier step already exists on
    /// disk (drives the `running → checkpointed` transition).
    Step {
        /// Job id.
        id: u64,
        /// Post-step time (a.u.).
        t: f64,
        /// `(column, value)` samples for this step.
        samples: Vec<(String, f64)>,
        /// Whether a durable snapshot exists for this job.
        durable: bool,
    },
    /// A resumed job republishing the steps restored from its snapshot
    /// (sent before any new [`JobEvent::Step`], so it *replaces* the
    /// job's progress), plus the implied `running → checkpointed` jump.
    Restored {
        /// Job id.
        id: u64,
        /// The restored prefix, already in column form.
        progress: JobProgress,
    },
    /// Terminal: result written.
    Finished {
        /// Job id.
        id: u64,
    },
    /// Terminal: error or panic.
    Failed {
        /// Job id.
        id: u64,
        /// Human-readable failure.
        error: String,
    },
    /// Terminal: cancellation honored.
    Cancelled {
        /// Job id.
        id: u64,
    },
    /// Tell the event pump to exit (sent by the shutdown path, never by a
    /// job).
    Stop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Checkpointed,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s.clone()));
            assert_eq!(
                s.is_terminal(),
                !matches!(
                    s,
                    JobState::Queued | JobState::Running | JobState::Checkpointed
                )
            );
        }
        assert_eq!(JobState::parse("nope"), None);
        assert!(JobState::Running.is_active());
        assert!(JobState::Checkpointed.is_active());
        assert!(!JobState::Queued.is_active());
        assert!(!JobState::Done.is_active());
    }

    #[test]
    fn progress_accumulates_columns() {
        let mut p = JobProgress::default();
        p.push_step(0.1, &[("energy".into(), -1.0), ("a_z".into(), 0.5)]);
        p.push_step(0.2, &[("energy".into(), -1.1), ("a_z".into(), 0.4)]);
        assert_eq!(p.steps_done(), 2);
        assert_eq!(p.channel("t"), Some(&[0.1, 0.2][..]));
        assert_eq!(p.channel("energy"), Some(&[-1.0, -1.1][..]));
        assert_eq!(p.channel("missing"), None);
        assert_eq!(p.channel_names(), vec!["t", "a_z", "energy"]);
    }
}
