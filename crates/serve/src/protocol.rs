//! The pt-serve wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message — request, response or stream element — is one *frame*:
//! a little-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON (parsed with [`pt_io::Json`]; no external serialization dep).
//! Requests are objects with a `"cmd"` key (`submit`, `status`, `tail`,
//! `cancel`, `fetch`, `shutdown`); responses carry `"ok": true` plus
//! command-specific fields, or `"ok": false` with an `"error"` string.
//! `tail` is the one streaming command: the server keeps sending frames
//! (`done: false`) until the job reaches a terminal state or `follow` was
//! false, then closes the stream with a `done: true` frame. A connection
//! handles any number of sequential requests.

use pt_ham::PtError;
use pt_io::Json;
use std::io::{Read, Write};

/// Upper bound on one frame's payload — large enough for a full result
/// table of a long run, small enough to reject garbage length prefixes
/// (e.g. a plain-HTTP client knocking on the port) before allocating.
pub const MAX_FRAME: usize = 64 << 20;

fn io_err(what: &str, e: &std::io::Error) -> PtError {
    PtError::Io {
        path: "<pt-serve socket>".into(),
        reason: format!("{what}: {e}"),
    }
}

/// Serialize `msg` and write it as one frame.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> Result<(), PtError> {
    let body = msg.dump();
    let n = u32::try_from(body.len()).map_err(|_| {
        PtError::InvalidConfig(format!("frame of {} bytes exceeds u32", body.len()))
    })?;
    w.write_all(&n.to_le_bytes())
        .and_then(|()| w.write_all(body.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| io_err("writing frame", &e))
}

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary (the
/// peer hung up between messages); anything else that cuts a frame short
/// is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, PtError> {
    let mut len = [0u8; 4];
    // distinguish "no next frame" from "frame cut short": EOF on the very
    // first byte of the prefix is a clean close
    match r.read(&mut len[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(io_err("reading frame length", &e)),
    }
    r.read_exact(&mut len[1..])
        .map_err(|e| io_err("reading frame length", &e))?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(PtError::InvalidConfig(format!(
            "frame length {n} exceeds the {MAX_FRAME}-byte cap — not a pt-serve peer?"
        )));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)
        .map_err(|e| io_err("reading frame body", &e))?;
    let text = String::from_utf8(body)
        .map_err(|e| PtError::InvalidConfig(format!("frame is not UTF-8: {e}")))?;
    Json::parse(&text).map(Some)
}

/// Build the uniform error response frame.
pub fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

/// Build an `"ok": true` response with extra fields.
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// Extract the result of a response frame: the object on `ok: true`, the
/// server's error message (as [`PtError::InvalidConfig`]) on `ok: false`.
pub fn check_response(msg: Json) -> Result<Json, PtError> {
    match msg.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(msg),
        Some(false) => Err(PtError::InvalidConfig(format!(
            "server refused: {}",
            msg.get("error").and_then(Json::as_str).unwrap_or("unknown")
        ))),
        None => Err(PtError::InvalidConfig(
            "malformed response: missing 'ok'".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let a = ok_response(vec![("job".to_string(), Json::Num(7.0))]);
        let b = error_response("nope");
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        let got_a = read_frame(&mut r).unwrap().unwrap();
        let got_b = read_frame(&mut r).unwrap().unwrap();
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        assert_eq!(got_a.get("job").and_then(Json::as_u64), Some(7));
        assert!(check_response(got_a).is_ok());
        let err = check_response(got_b).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ok_response(vec![])).unwrap();
        // frame cut short mid-body
        let cut = &buf[..buf.len() - 2];
        assert!(read_frame(&mut &cut[..]).is_err());
        // frame cut short mid-prefix
        assert!(read_frame(&mut &buf[..2]).is_err());
        // absurd length prefix (e.g. "GET " from an HTTP client)
        let garbage = *b"GET / HTTP/1.1\r\n";
        assert!(read_frame(&mut &garbage[..]).is_err());
    }
}
