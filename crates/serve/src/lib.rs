//! `pt-serve` — a simulation job server over the workspace's rt-TDDFT
//! stack: submit [`JobSpec`]s, watch observables stream live, survive
//! `kill -9`.
//!
//! The paper's production reality is a *fleet* of runs sharing a machine
//! allocation — parameter scans, convergence ladders, restarts — not one
//! heroic process. This crate packages that workflow:
//!
//! * **Queue + core-packing scheduler** ([`CorePackingScheduler`]): jobs
//!   declare a `ranks × threads_per_rank` layout
//!   ([`pt_par::RankLayout`]); the scheduler packs concurrent jobs
//!   against a server-wide core budget — FIFO with bounded backfill, so
//!   narrow jobs keep the machine busy but can never starve a wide one.
//!   Jobs that could never fit are rejected at submit with a typed error.
//! * **Live observable streaming**: each job's step tap publishes every
//!   committed step over an mpsc fan-in to the per-job progress hub;
//!   `tail` streams any channel (energy, current, dipole, SCF stats …)
//!   over a length-prefixed JSON/TCP protocol while the job runs.
//! * **Crash durability**: specs, rolling snapshots and terminal markers
//!   all live under the run directory, written atomically or
//!   CRC-verified. Kill the server (`SIGKILL`, power loss) and start it
//!   again on the same directory: finished jobs rehydrate, interrupted
//!   jobs resume from their newest *valid* snapshot and complete with
//!   **bit-identical** final series (the checkpoint/resume contract of
//!   `pt-core` extended to a whole fleet). Job panics are caught by the
//!   per-job supervisor and become typed `failed` states.
//!
//! Everything is std-only, like the rest of the workspace: the protocol
//! runs on `std::net::TcpStream`, serialization on [`pt_io::Json`].
//!
//! See `DESIGN.md` ("Job server: protocol, scheduling, durability") for
//! the wire format and the job state machine.

mod client;
mod hub;
mod protocol;
mod scheduler;
mod server;
mod spec;

pub use client::{Client, JobRate, JobStatus, StatsFrame, TailChunk};
pub use hub::{stats_samples, update_samples, JobEvent, JobProgress, JobRecord, JobState};
pub use protocol::{
    check_response, error_response, ok_response, read_frame, write_frame, MAX_FRAME,
};
pub use scheduler::{CorePackingScheduler, MAX_BACKFILLS_PAST_HEAD};
pub use server::{port_file, read_port_file, start, ServerConfig, ServerHandle};
pub use spec::{JobSpec, LaserSpec, SystemSpec};
