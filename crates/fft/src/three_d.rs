//! Three-dimensional transforms over the plane-wave grids.
//!
//! Layout convention (used across the workspace): the grid value at integer
//! coordinates `(ix, iy, iz)` lives at linear index `ix + nx*(iy + ny*iz)` —
//! x fastest. A [`Fft3`] owns three 1-D plans and exposes
//!
//! * [`Fft3::forward`]/[`Fft3::inverse`] — one transform, rayon-parallel
//!   over FFT lines (the "band-by-band" execution of the paper: one orbital
//!   at a time keeps the device busy via intra-transform parallelism);
//! * [`Fft3::forward_batch`]/[`Fft3::inverse_batch`] — many independent
//!   transforms, parallel *across* the batch with serial lines inside (the
//!   paper's "batched CUFFT" layout that saturates bandwidth).

use crate::plan::{Direction, Plan1d};
use pt_num::c64;
use rayon::prelude::*;

/// A 3-D FFT of fixed dimensions.
pub struct Fft3 {
    nx: usize,
    ny: usize,
    nz: usize,
    px: Plan1d,
    py: Plan1d,
    pz: Plan1d,
}

impl Fft3 {
    /// Build plans for an `nx × ny × nz` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3 {
            nx,
            ny,
            nz,
            px: Plan1d::new(nx),
            py: Plan1d::new(ny),
            pz: Plan1d::new(nz),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True for a degenerate 1-point grid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Parallel forward transform (unscaled).
    pub fn forward(&self, data: &mut [c64]) {
        pt_trace::counter_add(pt_trace::Counter::FftTransforms, 1);
        self.process_par(data, Direction::Forward);
    }

    /// Parallel inverse transform (scaled by 1/N).
    pub fn inverse(&self, data: &mut [c64]) {
        pt_trace::counter_add(pt_trace::Counter::FftTransforms, 1);
        self.process_par(data, Direction::Inverse);
    }

    /// Single-threaded forward transform.
    pub fn forward_serial(&self, data: &mut [c64]) {
        pt_trace::counter_add(pt_trace::Counter::FftTransforms, 1);
        self.process_serial(data, Direction::Forward);
    }

    /// Single-threaded inverse transform.
    pub fn inverse_serial(&self, data: &mut [c64]) {
        pt_trace::counter_add(pt_trace::Counter::FftTransforms, 1);
        self.process_serial(data, Direction::Inverse);
    }

    /// Forward-transform a batch of `data.len()/len()` independent grids,
    /// parallel across the batch.
    pub fn forward_batch(&self, data: &mut [c64]) {
        self.batch(data, Direction::Forward);
    }

    /// Inverse-transform a batch, parallel across the batch.
    pub fn inverse_batch(&self, data: &mut [c64]) {
        self.batch(data, Direction::Inverse);
    }

    fn batch(&self, data: &mut [c64], dir: Direction) {
        let n = self.len();
        assert_eq!(
            data.len() % n,
            0,
            "batch length must be a multiple of grid size"
        );
        pt_trace::counter_add(pt_trace::Counter::FftBatches, 1);
        pt_trace::counter_add(pt_trace::Counter::FftTransforms, (data.len() / n) as u64);
        // one band per pool task: dynamic claiming load-balances uneven
        // band counts, and each transform is serial inside (the paper's
        // batched-CUFFT layout)
        pt_par::parallel_chunks_mut(data, n, |_band, grid| self.process_serial(grid, dir));
    }

    fn process_serial(&self, data: &mut [c64], dir: Direction) {
        assert_eq!(data.len(), self.len(), "grid size mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut scratch = vec![
            c64::ZERO;
            self.px
                .scratch_len()
                .max(self.py.scratch_len())
                .max(self.pz.scratch_len())
        ];
        // x lines are contiguous
        for row in data.chunks_mut(nx) {
            self.px.process(row, &mut scratch, dir);
        }
        // y lines within each z-slab
        let mut line = vec![c64::ZERO; ny.max(nz)];
        for iz in 0..nz {
            let slab = &mut data[iz * nx * ny..(iz + 1) * nx * ny];
            for ix in 0..nx {
                for iy in 0..ny {
                    line[iy] = slab[ix + nx * iy];
                }
                self.py.process(&mut line[..ny], &mut scratch, dir);
                for iy in 0..ny {
                    slab[ix + nx * iy] = line[iy];
                }
            }
        }
        // z lines stride across slabs
        let nl = nx * ny;
        for l in 0..nl {
            for iz in 0..nz {
                line[iz] = data[l + nl * iz];
            }
            self.pz.process(&mut line[..nz], &mut scratch, dir);
            for iz in 0..nz {
                data[l + nl * iz] = line[iz];
            }
        }
    }

    fn process_par(&self, data: &mut [c64], dir: Direction) {
        assert_eq!(data.len(), self.len(), "grid size mismatch");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // x axis: contiguous rows
        data.par_chunks_mut(nx).for_each_init(
            || vec![c64::ZERO; self.px.scratch_len()],
            |scratch, row| self.px.process(row, scratch, dir),
        );
        // y axis: independent z-slabs
        data.par_chunks_mut(nx * ny).for_each_init(
            || (vec![c64::ZERO; ny], vec![c64::ZERO; self.py.scratch_len()]),
            |(line, scratch), slab| {
                for ix in 0..nx {
                    for iy in 0..ny {
                        line[iy] = slab[ix + nx * iy];
                    }
                    self.py.process(line, scratch, dir);
                    for iy in 0..ny {
                        slab[ix + nx * iy] = line[iy];
                    }
                }
            },
        );
        // z axis: transpose into line-major scratch, transform, scatter back
        let nl = nx * ny;
        let mut buf = vec![c64::ZERO; data.len()];
        {
            let src: &[c64] = data;
            buf.par_chunks_mut(nz).enumerate().for_each_init(
                || vec![c64::ZERO; self.pz.scratch_len()],
                |scratch, (l, lbuf)| {
                    for (iz, v) in lbuf.iter_mut().enumerate() {
                        *v = src[l + nl * iz];
                    }
                    self.pz.process(lbuf, scratch, dir);
                },
            );
        }
        data.par_chunks_mut(nl).enumerate().for_each(|(iz, slab)| {
            for (l, v) in slab.iter_mut().enumerate() {
                *v = buf[l * nz + iz];
            }
        });
    }
}
