//! One-dimensional FFT plans.
//!
//! A [`Plan1d`] owns the twiddle tables for a fixed length and is immutable
//! after construction, so one plan can be shared across rayon workers; each
//! call supplies (or allocates) its own scratch.

use pt_num::c64;

/// Transform direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// e^{-2πi jk/n}, unscaled.
    Forward,
    /// e^{+2πi jk/n}, scaled by 1/n.
    Inverse,
}

/// Smallest integer `>= n` whose prime factors are all in {2, 3, 5}.
///
/// Plane-wave codes size their FFT grids this way; with the paper's cell and
/// cutoff this reproduces exactly the 60×90×120 wavefunction grid (see
/// `pt-lattice` tests).
pub fn next_smooth(n: usize) -> usize {
    fn is_smooth(mut m: usize) -> bool {
        for p in [2usize, 3, 5] {
            while m.is_multiple_of(p) {
                m /= p;
            }
        }
        m == 1
    }
    let mut m = n.max(1);
    while !is_smooth(m) {
        m += 1;
    }
    m
}

/// Factor `n` into radices drawn from {4, 2, 3, 5} (4 preferred over 2×2 to
/// halve recursion depth). Returns `None` if a different prime remains.
fn factorize_smooth(mut n: usize) -> Option<Vec<usize>> {
    let mut f = Vec::new();
    while n.is_multiple_of(4) {
        f.push(4);
        n /= 4;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            f.push(p);
            n /= p;
        }
    }
    if n == 1 {
        Some(f)
    } else {
        None
    }
}

enum Kind {
    /// Trivial n == 1.
    Identity,
    /// Recursive mixed-radix Cooley–Tukey for 2,3,5-smooth n.
    MixedRadix { factors: Vec<usize> },
    /// Bluestein chirp-z for arbitrary n: embeds the length-n DFT in a
    /// circular convolution of power-of-two length m >= 2n-1.
    Bluestein {
        inner: Box<Plan1d>,
        /// chirp a_j = e^{-iπ j²/n} (forward sign), length n
        chirp: Vec<c64>,
        /// FFT of the zero-padded conjugate-chirp kernel, length m
        kernel_fft: Vec<c64>,
        m: usize,
    },
}

/// A reusable FFT plan for a fixed 1-D length.
pub struct Plan1d {
    n: usize,
    /// w[k] = e^{-2πik/n} for k in 0..n (forward roots).
    roots: Vec<c64>,
    kind: Kind,
}

impl Plan1d {
    /// Build a plan for length `n` (any positive length).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let roots = (0..n)
            .map(|k| c64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let kind = if n == 1 {
            Kind::Identity
        } else if let Some(factors) = factorize_smooth(n) {
            Kind::MixedRadix { factors }
        } else {
            // Bluestein setup
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(Plan1d::new(m));
            let pi = std::f64::consts::PI;
            // Use j^2 mod 2n to keep the phase argument small and precise.
            let chirp: Vec<c64> = (0..n)
                .map(|j| {
                    let q = (j * j) % (2 * n);
                    c64::cis(-pi * q as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![c64::ZERO; m];
            for j in 0..n {
                let v = chirp[j].conj();
                kernel[j] = v;
                if j != 0 {
                    kernel[m - j] = v;
                }
            }
            let mut scratch = vec![c64::ZERO; m];
            inner.process(&mut kernel, &mut scratch, Direction::Forward);
            Kind::Bluestein {
                inner,
                chirp,
                kernel_fft: kernel,
                m,
            }
        };
        Plan1d { n, roots, kind }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the plan length is 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Scratch length required by [`Plan1d::process`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Identity => 0,
            Kind::MixedRadix { .. } => self.n,
            // two length-m work buffers for the convolution
            Kind::Bluestein { m, .. } => 3 * m,
        }
    }

    /// In-place transform of `data` (length n) using caller-provided
    /// `scratch` (at least [`Plan1d::scratch_len`]).
    pub fn process(&self, data: &mut [c64], scratch: &mut [c64], dir: Direction) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        match &self.kind {
            Kind::Identity => {}
            Kind::MixedRadix { factors } => {
                if dir == Direction::Inverse {
                    // inverse = conj(forward(conj(x)))/n
                    for z in data.iter_mut() {
                        *z = z.conj();
                    }
                }
                let out = &mut scratch[..self.n];
                self.rec(data, 1, out, self.n, 1, factors, 0);
                let inv_n = 1.0 / self.n as f64;
                if dir == Direction::Inverse {
                    for (d, s) in data.iter_mut().zip(out.iter()) {
                        *d = s.conj().scale(inv_n);
                    }
                } else {
                    data.copy_from_slice(out);
                }
            }
            Kind::Bluestein {
                inner,
                chirp,
                kernel_fft,
                m,
            } => {
                let m = *m;
                let conj_in = dir == Direction::Inverse;
                let (a, rest) = scratch.split_at_mut(m);
                let (inner_scratch, _) = rest.split_at_mut(2 * m);
                // a_j = x_j * chirp_j, zero padded
                for (j, aj) in a.iter_mut().enumerate().take(self.n) {
                    let x = if conj_in { data[j].conj() } else { data[j] };
                    *aj = x * chirp[j];
                }
                for aj in a.iter_mut().take(m).skip(self.n) {
                    *aj = c64::ZERO;
                }
                inner.process(a, inner_scratch, Direction::Forward);
                for (aj, kj) in a.iter_mut().zip(kernel_fft.iter()) {
                    *aj *= *kj;
                }
                inner.process(a, inner_scratch, Direction::Inverse);
                let inv_n = 1.0 / self.n as f64;
                for k in 0..self.n {
                    let y = a[k] * chirp[k];
                    data[k] = if conj_in { y.conj().scale(inv_n) } else { y };
                }
            }
        }
    }

    /// Convenience transform that allocates its own scratch.
    pub fn transform(&self, data: &mut [c64], dir: Direction) {
        let mut scratch = vec![c64::ZERO; self.scratch_len()];
        self.process(data, &mut scratch, dir);
    }

    /// Recursive decimation-in-time mixed-radix step.
    ///
    /// Transforms `n` elements read from `src` with stride `src_stride` into
    /// `dst[..n]` (contiguous). `root_stride = N / n` indexes the global
    /// forward root table.
    #[allow(clippy::too_many_arguments)] // recursion carries the full plan state
    fn rec(
        &self,
        src: &[c64],
        src_stride: usize,
        dst: &mut [c64],
        n: usize,
        root_stride: usize,
        factors: &[usize],
        depth: usize,
    ) {
        if n == 1 {
            dst[0] = src[0];
            return;
        }
        let r = factors[depth];
        let m = n / r;
        // Recurse on the r decimated subsequences.
        for q in 0..r {
            let (head, tail) = dst.split_at_mut(q * m);
            let _ = head;
            let sub = &mut tail[..m];
            self.rec(
                &src[q * src_stride..],
                src_stride * r,
                sub,
                m,
                root_stride * r,
                factors,
                depth + 1,
            );
        }
        // Combine: for each k, out[k + j*m] = Σ_q W_N^{rs·q·k} W_r^{qj} sub_q[k].
        let nn = self.roots.len();
        let mut t = [c64::ZERO; 5];
        for k in 0..m {
            for (q, tq) in t.iter_mut().enumerate().take(r) {
                let tw = self.roots[(q * k * root_stride) % nn];
                *tq = dst[q * m + k] * tw;
            }
            for j in 0..r {
                let mut acc = t[0];
                for (q, tq) in t.iter().enumerate().take(r).skip(1) {
                    // W_r^{qj} = roots[(q*j*m*root_stride) % nn]
                    let w = self.roots[(q * j * m * root_stride) % nn];
                    acc = acc.mul_add(*tq, w);
                }
                dst[k + j * m] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_sizing() {
        assert_eq!(next_smooth(1), 1);
        assert_eq!(next_smooth(7), 8);
        assert_eq!(next_smooth(11), 12);
        assert_eq!(next_smooth(59), 60);
        assert_eq!(next_smooth(87), 90);
        assert_eq!(next_smooth(117), 120);
        assert_eq!(next_smooth(121), 125);
    }

    #[test]
    fn factorization_prefers_radix4() {
        assert_eq!(factorize_smooth(16), Some(vec![4, 4]));
        assert_eq!(factorize_smooth(60), Some(vec![4, 3, 5]));
        assert_eq!(factorize_smooth(7), None);
    }
}
