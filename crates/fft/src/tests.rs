//! Correctness tests: every transform is checked against the naive O(n²)
//! DFT and against algebraic invariants (roundtrip, Parseval, linearity,
//! shift theorem). Property tests cover arbitrary (including prime) sizes,
//! which exercise the Bluestein path.

use crate::{next_smooth, Direction, Fft3, Plan1d};
use proptest::prelude::*;
use pt_num::c64;

fn naive_dft(x: &[c64], dir: Direction) -> Vec<c64> {
    let n = x.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![c64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = c64::ZERO;
        for (j, &xj) in x.iter().enumerate() {
            let phase = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
            acc += xj * c64::cis(phase);
        }
        *o = if dir == Direction::Inverse {
            acc / n as f64
        } else {
            acc
        };
    }
    out
}

fn random_signal(n: usize, seed: u64) -> Vec<c64> {
    // Deterministic xorshift so tests are reproducible without rand.
    let mut rng =
        pt_num::rng::XorShift64::new(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
    (0..n)
        .map(|_| c64::new(rng.next_centered(), rng.next_centered()))
        .collect()
}

fn max_err(a: &[c64], b: &[c64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn matches_naive_dft_many_sizes() {
    // smooth sizes take the mixed-radix path, primes the Bluestein path
    for n in [
        1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 20, 24, 25, 30, 31, 36, 45, 60,
    ] {
        let plan = Plan1d::new(n);
        let x = random_signal(n, n as u64);
        let mut y = x.clone();
        plan.transform(&mut y, Direction::Forward);
        let want = naive_dft(&x, Direction::Forward);
        let err = max_err(&y, &want);
        assert!(err < 1e-10 * (n as f64), "n={n} err={err}");
    }
}

#[test]
fn inverse_matches_naive_dft() {
    for n in [3usize, 7, 12, 18, 29, 40] {
        let plan = Plan1d::new(n);
        let x = random_signal(n, 1000 + n as u64);
        let mut y = x.clone();
        plan.transform(&mut y, Direction::Inverse);
        let want = naive_dft(&x, Direction::Inverse);
        assert!(max_err(&y, &want) < 1e-11 * n as f64, "n={n}");
    }
}

#[test]
fn paper_grid_lines_roundtrip() {
    // The 1536-atom wavefunction grid in the paper is 60 × 90 × 120.
    for n in [60usize, 90, 120] {
        let plan = Plan1d::new(n);
        let x = random_signal(n, n as u64 * 7);
        let mut y = x.clone();
        plan.transform(&mut y, Direction::Forward);
        plan.transform(&mut y, Direction::Inverse);
        assert!(max_err(&x, &y) < 1e-12, "n={n}");
    }
}

#[test]
fn delta_transforms_to_constant() {
    let n = 24;
    let plan = Plan1d::new(n);
    let mut x = vec![c64::ZERO; n];
    x[0] = c64::ONE;
    plan.transform(&mut x, Direction::Forward);
    for v in &x {
        assert!((*v - c64::ONE).abs() < 1e-13);
    }
}

#[test]
fn plane_wave_transforms_to_delta() {
    let n = 30;
    let k0 = 7usize;
    let plan = Plan1d::new(n);
    let mut x: Vec<c64> = (0..n)
        .map(|j| c64::cis(2.0 * std::f64::consts::PI * (j * k0) as f64 / n as f64))
        .collect();
    plan.transform(&mut x, Direction::Forward);
    for (k, v) in x.iter().enumerate() {
        let want = if k == k0 { n as f64 } else { 0.0 };
        assert!(
            (v.re - want).abs() < 1e-10 && v.im.abs() < 1e-10,
            "k={k} v={v:?}"
        );
    }
}

#[test]
fn parseval_identity() {
    let n = 48;
    let plan = Plan1d::new(n);
    let x = random_signal(n, 99);
    let mut y = x.clone();
    plan.transform(&mut y, Direction::Forward);
    let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
    let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
    assert!((ex - ey).abs() < 1e-12 * ex);
}

#[test]
fn fft3_roundtrip_and_naive_small() {
    let (nx, ny, nz) = (3, 4, 5);
    let fft = Fft3::new(nx, ny, nz);
    let x = random_signal(nx * ny * nz, 5);
    // naive separable 3-D DFT
    let mut want = vec![c64::ZERO; x.len()];
    for kx in 0..nx {
        for ky in 0..ny {
            for kz in 0..nz {
                let mut acc = c64::ZERO;
                for jx in 0..nx {
                    for jy in 0..ny {
                        for jz in 0..nz {
                            let ph = -2.0
                                * std::f64::consts::PI
                                * ((jx * kx) as f64 / nx as f64
                                    + (jy * ky) as f64 / ny as f64
                                    + (jz * kz) as f64 / nz as f64);
                            acc += x[jx + nx * (jy + ny * jz)] * c64::cis(ph);
                        }
                    }
                }
                want[kx + nx * (ky + ny * kz)] = acc;
            }
        }
    }
    let mut y = x.clone();
    fft.forward(&mut y);
    assert!(max_err(&y, &want) < 1e-10, "forward vs naive");
    fft.inverse(&mut y);
    assert!(max_err(&y, &x) < 1e-12, "roundtrip");
}

#[test]
fn fft3_serial_equals_parallel() {
    let fft = Fft3::new(12, 10, 9);
    let x = random_signal(12 * 10 * 9, 17);
    let mut a = x.clone();
    let mut b = x.clone();
    fft.forward(&mut a);
    fft.forward_serial(&mut b);
    assert!(max_err(&a, &b) < 1e-12);
}

#[test]
fn fft3_batch_equals_loop() {
    let fft = Fft3::new(6, 5, 4);
    let n = fft.len();
    let batch = 7;
    let x = random_signal(n * batch, 23);
    let mut a = x.clone();
    fft.forward_batch(&mut a);
    let mut b = x.clone();
    for chunk in b.chunks_mut(n) {
        fft.forward_serial(chunk);
    }
    assert!(max_err(&a, &b) < 1e-12);
    fft.inverse_batch(&mut a);
    assert!(max_err(&a, &x) < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_roundtrip_any_size(n in 1usize..80, seed in 0u64..1000) {
        let plan = Plan1d::new(n);
        let x = random_signal(n, seed);
        let mut y = x.clone();
        plan.transform(&mut y, Direction::Forward);
        plan.transform(&mut y, Direction::Inverse);
        prop_assert!(max_err(&x, &y) < 1e-10);
    }

    #[test]
    fn prop_linearity(n in 2usize..50, seed in 0u64..1000) {
        let plan = Plan1d::new(n);
        let x = random_signal(n, seed);
        let y = random_signal(n, seed + 1);
        let alpha = c64::new(0.7, -0.3);
        let mut lhs: Vec<c64> = x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
        plan.transform(&mut lhs, Direction::Forward);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.transform(&mut fx, Direction::Forward);
        plan.transform(&mut fy, Direction::Forward);
        let rhs: Vec<c64> = fx.iter().zip(&fy).map(|(a, b)| *a * alpha + *b).collect();
        prop_assert!(max_err(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn prop_next_smooth_is_smooth_and_minimal(n in 1usize..5000) {
        let m = next_smooth(n);
        prop_assert!(m >= n);
        let mut q = m;
        for p in [2usize, 3, 5] { while q.is_multiple_of(p) { q /= p; } }
        prop_assert_eq!(q, 1);
    }

    #[test]
    fn prop_shift_theorem(n in 4usize..40, shift in 1usize..8, seed in 0u64..100) {
        let shift = shift % n;
        let plan = Plan1d::new(n);
        let x = random_signal(n, seed);
        let shifted: Vec<c64> = (0..n).map(|j| x[(j + shift) % n]).collect();
        let mut fx = x.clone();
        let mut fs = shifted;
        plan.transform(&mut fx, Direction::Forward);
        plan.transform(&mut fs, Direction::Forward);
        for k in 0..n {
            let phase = c64::cis(2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64);
            let want = fx[k] * phase;
            prop_assert!((fs[k] - want).abs() < 1e-9);
        }
    }
}
