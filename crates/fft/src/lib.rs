//! `pt-fft` — complex fast Fourier transforms for the plane-wave stack.
//!
//! The paper's hot loop is Alg. 2: the Fock exchange operator solves
//! N_e² Poisson-like equations per application, each of which is a pair of
//! 3-D FFTs on the wavefunction grid (60×90×120 for the 1536-atom system).
//! These sizes are 2,3,5-smooth by construction, so the core transform here
//! is a recursive mixed-radix (2/3/4/5) Cooley–Tukey; arbitrary sizes fall
//! back to Bluestein's chirp-z algorithm so property tests can exercise any
//! length.
//!
//! Two batching modes mirror the paper's GPU optimization stages (§3.2):
//!
//! * **band-by-band** ([`Fft3::forward`] called per orbital, internally
//!   parallel over FFT lines) — the "step 1" port;
//! * **batched** ([`Fft3::forward_batch`], parallel across many independent
//!   3-D transforms) — the "step 2" batched CUFFT analogue, which is the
//!   profitable layout on wide machines.
//!
//! Conventions: `forward` computes X_k = Σ_j x_j e^{-2πi jk/n} (no scaling);
//! `inverse` applies the conjugate transform and divides by n, so
//! `inverse(forward(x)) == x`.

mod plan;
mod three_d;

pub use plan::{next_smooth, Direction, Plan1d};
pub use three_d::Fft3;

#[cfg(test)]
mod tests;
