//! The ACE accuracy contract. `Ace { refresh_interval: 1 }` refreshes the
//! projector *self-consistently* every step: ξ is rebuilt from the
//! converged orbitals and the step re-solved until the inter-round
//! density drift falls below `rho_tol`. ACE is exact on its defining
//! block, so the accepted fixed point is the `Full` fixed point — the
//! per-step-refresh trajectory must track the full pair-FFT Fock loop to
//! the solver tolerance, not merely to an O(dt²) discretization gap.
//! Over a 20-step laser-driven hybrid run the observables must agree to
//! 1e-8 (both runs solved to `rho_tol = 1e-10` so the bound is the
//! physics, not the stopping criterion). Larger refresh intervals freeze
//! the projector across steps and must degrade *gracefully*: errors grow
//! with staleness but stay finite and small, every step still converges,
//! and orthonormality is preserved to machine level.

use pwdft_rt::prelude::*;

fn hybrid_system() -> KsSystem {
    KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .build()
        .unwrap()
}

/// Both the Full reference and every ACE run use the same tightened
/// PT-CN options, routed through an explicit propagator so the 1e-8
/// comparison is not limited by the default 1e-6 fixed-point tolerance.
fn run_mode(sys: &KsSystem, gs: &ScfResult, mode: Option<ExchangeMode>) -> TimeSeries {
    let opts = PtCnOptions {
        rho_tol: 1e-10,
        max_scf: 80,
        ..PtCnOptions::default()
    };
    let prop: Box<dyn Propagator> = match mode {
        None => Box::new(PtCnPropagator::new(opts)),
        Some(m) => Box::new(PtCnPropagator::with_exchange(opts, m)),
    };
    let series = SimulationBuilder::new(sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(20)
        .propagator(prop)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        series.stats.iter().all(|s| s.converged),
        "{mode:?}: every PT-CN step must converge"
    );
    let ortho = series.channel("orthonormality_error").unwrap();
    assert!(
        ortho.iter().all(|&x| x < 1e-9),
        "{mode:?}: orthonormality must stay machine-level"
    );
    series
}

fn max_channel_err(a: &TimeSeries, b: &TimeSeries, name: &str) -> f64 {
    a.channel(name)
        .unwrap()
        .iter()
        .zip(b.channel(name).unwrap())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn ace_1_tracks_full_observables_and_larger_intervals_degrade_gracefully() {
    let sys = hybrid_system();
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let full = run_mode(&sys, &gs, None);
    let err_vs_full = |mode: ExchangeMode| -> (f64, f64) {
        let series = run_mode(&sys, &gs, Some(mode));
        let dipole = ["dipole_x", "dipole_y", "dipole_z"]
            .iter()
            .map(|ch| max_channel_err(&full, &series, ch))
            .fold(0.0, f64::max);
        let e_scale = full.channel("energy").unwrap()[0].abs();
        let energy = max_channel_err(&full, &series, "energy") / e_scale;
        (dipole, energy)
    };

    // the acceptance bound: per-step self-consistent refresh is
    // indistinguishable from the full Fock loop at observable level
    let (dip1, en1) = err_vs_full(ExchangeMode::Ace {
        refresh_interval: 1,
    });
    assert!(dip1 <= 1e-8, "Ace{{1}} dipole error vs Full: {dip1:e}");
    assert!(
        en1 <= 1e-8,
        "Ace{{1}} relative energy error vs Full: {en1:e}"
    );

    // stale projectors lose accuracy but never stability: the error grows
    // with the refresh interval yet stays finite and small, and (asserted
    // inside run_mode) every step converges with machine orthonormality
    let (dip2, en2) = err_vs_full(ExchangeMode::Ace {
        refresh_interval: 2,
    });
    let (dip5, en5) = err_vs_full(ExchangeMode::Ace {
        refresh_interval: 5,
    });
    for (label, v) in [("dip2", dip2), ("en2", en2), ("dip5", dip5), ("en5", en5)] {
        assert!(v.is_finite() && v <= 5e-2, "{label} = {v:e}");
    }
    assert!(
        dip2 >= dip1 && dip5 >= dip1,
        "stale projectors cannot beat per-step refresh: \
         dip2 = {dip2:e}, dip5 = {dip5:e}, dip1 = {dip1:e}"
    );

    // MTS rides on the same frozen projector: substepping the local parts
    // must not disturb the exchange accuracy class
    let (dip_mts, en_mts) = err_vs_full(ExchangeMode::AceMts {
        refresh_interval: 2,
        inner_substeps: 2,
    });
    assert!(
        dip_mts.is_finite() && dip_mts <= 5e-2,
        "AceMts dipole error: {dip_mts:e}"
    );
    assert!(
        en_mts.is_finite() && en_mts <= 5e-2,
        "AceMts energy error: {en_mts:e}"
    );
}
