//! The unified simulation API, end to end: builder-based setup, runtime
//! propagator selection, the observer pipeline, and the physics it must
//! record — a laser run drives a current along its polarization axis while
//! norm and orthonormality stay conserved.

use pwdft_rt::prelude::*;

fn lda_ground_state(ecut: f64) -> (KsSystem, ScfResult) {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(ecut)
        .xc(XcKind::Lda)
        .build()
        .expect("valid system");
    let o = ScfOptions {
        rho_tol: 1e-7,
        ..Default::default()
    };
    let r = scf_loop(&sys, o).expect("SCF converges");
    (sys, r)
}

#[test]
fn laser_run_records_current_along_polarization_and_conserves_invariants() {
    let (sys, gs) = lda_ground_state(2.0);
    let n_electrons: f64 = sys.occupations.iter().sum();

    // ground state carries no current
    let j0 = current_density(&sys, &gs.orbitals, [0.0; 3]);
    for (d, j) in j0.iter().enumerate() {
        assert!(j.abs() < 1e-8, "ground-state current j[{d}] = {j:.2e}");
    }

    // a z-polarized kick over ≥ 10 PT-CN steps through the Simulation API
    let laser = LaserPulse {
        a0: 0.05,
        omega: 0.25,
        t0: attosecond_to_au(150.0),
        sigma: attosecond_to_au(80.0),
        polarization: [0.0, 0.0, 1.0],
    };
    let series = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser)
        .dt(attosecond_to_au(20.0))
        .steps(12)
        .propagator(Box::new(PtCnPropagator::default()))
        .standard_observers()
        .build()
        .expect("valid simulation")
        .run()
        .expect("run succeeds");

    assert_eq!(series.len(), 12);
    assert_eq!(series.propagator, "pt-cn");
    assert_eq!(series.stats.len(), 12);
    assert!(series.stats.iter().all(|s| s.scf_iterations >= 1));

    // current flows along the polarization axis z, and only along z
    let j_z = series.channel("current_z").expect("current_z recorded");
    let j_max = j_z.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    assert!(
        j_max > 1e-5,
        "no current built up along z: max |j_z| = {j_max:.2e}"
    );
    for axis in ["current_x", "current_y"] {
        let j = series.channel(axis).unwrap();
        let m = j.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(
            m < 1e-3 * j_max.max(1e-12),
            "{axis} should stay ~0, got {m:.2e}"
        );
    }

    // norm (electron count) and orthonormality are conserved every step
    for (i, &n) in series.channel("n_electrons").unwrap().iter().enumerate() {
        assert!((n - n_electrons).abs() < 1e-8, "step {i}: ∫ρ = {n}");
    }
    for (i, &e) in series
        .channel("orthonormality_error")
        .unwrap()
        .iter()
        .enumerate()
    {
        assert!(e < 1e-8, "step {i}: orthonormality error {e:.2e}");
    }

    // energy is absorbed from the pulse (monotone enough to be nonzero)
    let energy = series.channel("energy").unwrap();
    assert!(
        (energy.last().unwrap() - gs.energies.total()).abs() > 1e-8,
        "the pulse should move the total energy"
    );
}

#[test]
fn rk4_through_the_same_pipeline_agrees_with_ptcn() {
    let (sys, gs) = lda_ground_state(2.0);
    let laser = LaserPulse {
        a0: 0.05,
        omega: 0.25,
        t0: 0.0,
        sigma: 50.0,
        polarization: [0.0, 0.0, 1.0],
    };
    let window = attosecond_to_au(4.0);
    // same physical window, propagator chosen at runtime
    let runs: Vec<(Box<dyn Propagator>, usize)> = vec![
        (
            Box::new(PtCnPropagator::new(PtCnOptions {
                rho_tol: 1e-9,
                ..Default::default()
            })),
            2,
        ),
        (Box::new(Rk4Propagator::default()), 80),
    ];
    let mut finals = Vec::new();
    for (prop, steps) in runs {
        let mut sim = SimulationBuilder::new(&sys)
            .initial_orbitals(gs.orbitals.clone())
            .laser(laser)
            .dt(window / steps as f64)
            .steps(steps)
            .propagator(prop)
            .observer(Box::new(CurrentObserver))
            .build()
            .unwrap();
        let series = sim.run().unwrap();
        assert_eq!(series.len(), steps);
        finals.push((
            sim.state().psi.clone(),
            *series.channel("current_z").unwrap().last().unwrap(),
        ));
    }
    let d = density_matrix_distance(&finals[0].0, &finals[1].0);
    assert!(d < 5e-4, "PT-CN vs RK4 density-matrix distance {d:.2e}");
    assert!(
        (finals[0].1 - finals[1].1).abs() < 1e-5,
        "final currents disagree: {:.3e} vs {:.3e}",
        finals[0].1,
        finals[1].1
    );
}

#[test]
fn continuing_a_run_extends_the_time_axis() {
    let (sys, gs) = lda_ground_state(2.0);
    let dt = attosecond_to_au(25.0);
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(dt)
        .steps(2)
        .observer(Box::new(OrthonormalityObserver))
        .build()
        .unwrap();
    let first = sim.run().unwrap();
    let second = sim.run().unwrap();
    assert!((first.t[1] - 2.0 * dt).abs() < 1e-12);
    assert!((second.t[0] - 3.0 * dt).abs() < 1e-12);
}
