//! Integration tests spanning crates: ground state → PT-CN propagation →
//! observables, for both semi-local and hybrid functionals.

use pwdft_rt::core::{
    density_matrix_distance, orthonormality_error, PtCnOptions, PtCnPropagator, Rk4Propagator,
    TdState,
};
use pwdft_rt::ham::{HybridConfig, KsSystem};
use pwdft_rt::lattice::silicon_cubic_supercell;
use pwdft_rt::num::units::attosecond_to_au;
use pwdft_rt::scf::{scf_loop, ScfOptions};
use pwdft_rt::xc::XcKind;

fn lda_ground_state(ecut: f64) -> (KsSystem, pwdft_rt::scf::ScfResult) {
    let s = silicon_cubic_supercell(1, 1, 1);
    let sys = KsSystem::new(s, ecut, XcKind::Lda, None);
    let mut o = ScfOptions::default();
    o.rho_tol = 1e-7;
    let r = scf_loop(&sys, o);
    (sys, r)
}

#[test]
fn hybrid_scf_lowers_gap_relative_to_lda_bandwidth() {
    // HSE-like exchange opens the eigenvalue gap relative to LDA — the
    // qualitative reason the paper's users want hybrid functionals.
    let s = silicon_cubic_supercell(1, 1, 1);
    let lda = {
        let sys = KsSystem::new(s.clone(), 2.5, XcKind::Lda, None);
        let mut o = ScfOptions::default();
        o.rho_tol = 1e-6;
        let r = scf_loop(&sys, o);
        // HOMO is the last occupied of 16 bands; estimate the gap from the
        // occupied spectrum spread (no empty bands solved here)
        (r.eigenvalues.clone(), r.energies.total())
    };
    let hyb = {
        let sys = KsSystem::new(s, 2.5, XcKind::Pbe, Some(HybridConfig::hse06()));
        let mut o = ScfOptions::default();
        o.rho_tol = 1e-6;
        o.max_phi_updates = 3;
        let r = scf_loop(&sys, o);
        (r.eigenvalues.clone(), r.energies.total())
    };
    // both converged to sane energies; exchange lowers the total energy
    assert!(lda.1.is_finite() && hyb.1.is_finite());
    assert!(hyb.1 < lda.1 + 5.0, "hybrid energy not crazy vs LDA");
    // occupied bandwidth differs between functionals (exchange acts)
    let bw = |e: &Vec<f64>| e.last().unwrap() - e.first().unwrap();
    assert!((bw(&lda.0) - bw(&hyb.0)).abs() > 1e-3);
}

#[test]
fn ptcn_50as_step_conserves_invariants_field_free() {
    let (sys, gs) = lda_ground_state(2.5);
    let prop = PtCnPropagator { sys: &sys, laser: None, opts: PtCnOptions::default() };
    let mut st = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let e0 = gs.energies.total();
    for _ in 0..3 {
        let stats = prop.step(&mut st, attosecond_to_au(50.0));
        assert!(stats.rho_residual < 1e-5);
    }
    assert!(orthonormality_error(&st.psi) < 1e-8);
    let rho = sys.density(&st.psi);
    let e = sys.energies(&st.psi, &rho, [0.0; 3]).total();
    assert!(
        (e - e0).abs() < 5e-4,
        "field-free energy drift over 150 as: {:.2e}",
        e - e0
    );
    // the state must stay in the ground-state manifold
    assert!(density_matrix_distance(&gs.orbitals, &st.psi) < 1e-2);
}

#[test]
fn ptcn_and_rk4_agree_on_driven_dynamics() {
    let (sys, gs) = lda_ground_state(2.0);
    let laser = Some(pwdft_rt::core::LaserPulse {
        a0: 0.05,
        omega: 0.25,
        t0: 0.0,
        sigma: 50.0,
        polarization: [0.0, 0.0, 1.0],
    });
    let dt = attosecond_to_au(4.0);
    let mut opts = PtCnOptions::default();
    opts.rho_tol = 1e-9;
    let prop = PtCnPropagator { sys: &sys, laser, opts };
    let mut st_pt = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    for _ in 0..2 {
        prop.step(&mut st_pt, dt);
    }
    let rk = Rk4Propagator { sys: &sys, laser };
    let mut st_rk = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    for _ in 0..80 {
        rk.step(&mut st_rk, dt / 40.0);
    }
    let d = density_matrix_distance(&st_pt.psi, &st_rk.psi);
    assert!(d < 5e-4, "PT-CN(2×4as) vs RK4(80×0.1as): {d:.2e}");
}

#[test]
fn hybrid_ptcn_counts_match_paper_bookkeeping() {
    // §7: one PT-CN step = n_scf + 2 exchange-bearing HΨ applications
    let s = silicon_cubic_supercell(1, 1, 1);
    let sys = KsSystem::new(s, 2.0, XcKind::Pbe, Some(HybridConfig::hse06()));
    let mut o = ScfOptions::default();
    o.rho_tol = 1e-6;
    o.max_phi_updates = 2;
    let gs = scf_loop(&sys, o);
    let prop = PtCnPropagator { sys: &sys, laser: None, opts: PtCnOptions::default() };
    let mut st = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let stats = prop.step(&mut st, attosecond_to_au(50.0));
    assert_eq!(stats.h_applications, stats.scf_iterations + 1);
    assert!(stats.scf_iterations >= 1);
    assert!(orthonormality_error(&st.psi) < 1e-9);
}
