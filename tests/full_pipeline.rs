//! Integration tests spanning crates: ground state → PT-CN propagation →
//! observables, for both semi-local and hybrid functionals — all through
//! the `Propagator` trait and builder-based setup.

use pwdft_rt::prelude::*;

fn lda_ground_state(ecut: f64) -> (KsSystem, ScfResult) {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(ecut)
        .xc(XcKind::Lda)
        .build()
        .expect("valid system");
    let o = ScfOptions {
        rho_tol: 1e-7,
        ..Default::default()
    };
    let r = scf_loop(&sys, o).expect("SCF converges");
    (sys, r)
}

#[test]
fn hybrid_scf_lowers_gap_relative_to_lda_bandwidth() {
    // HSE-like exchange opens the eigenvalue gap relative to LDA — the
    // qualitative reason the paper's users want hybrid functionals.
    let s = silicon_cubic_supercell(1, 1, 1);
    let lda = {
        let sys = KsSystem::builder(s.clone())
            .ecut(2.5)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let o = ScfOptions {
            rho_tol: 1e-6,
            ..Default::default()
        };
        let r = scf_loop(&sys, o).unwrap();
        // HOMO is the last occupied of 16 bands; estimate the gap from the
        // occupied spectrum spread (no empty bands solved here)
        (r.eigenvalues.clone(), r.energies.total())
    };
    let hyb = {
        let sys = KsSystem::builder(s)
            .ecut(2.5)
            .xc(XcKind::Pbe)
            .hybrid(HybridConfig::hse06())
            .build()
            .unwrap();
        let o = ScfOptions {
            rho_tol: 1e-6,
            max_phi_updates: 3,
            ..Default::default()
        };
        let r = scf_loop(&sys, o).unwrap();
        (r.eigenvalues.clone(), r.energies.total())
    };
    // both converged to sane energies; exchange lowers the total energy
    assert!(lda.1.is_finite() && hyb.1.is_finite());
    assert!(hyb.1 < lda.1 + 5.0, "hybrid energy not crazy vs LDA");
    // occupied bandwidth differs between functionals (exchange acts)
    let bw = |e: &Vec<f64>| e.last().unwrap() - e.first().unwrap();
    assert!((bw(&lda.0) - bw(&hyb.0)).abs() > 1e-3);
}

#[test]
fn ptcn_50as_step_conserves_invariants_field_free() {
    let (sys, gs) = lda_ground_state(2.5);
    let mut prop = PtCnPropagator::default();
    let mut st = TdState::new(gs.orbitals.clone());
    let e0 = gs.energies.total();
    for _ in 0..3 {
        let stats = prop
            .step(&sys, None, &mut st, attosecond_to_au(50.0))
            .unwrap();
        assert!(stats.rho_residual < 1e-5);
    }
    assert!(orthonormality_error(&st.psi) < 1e-8);
    let rho = sys.density(&st.psi);
    let e = sys.energies(&st.psi, &rho, [0.0; 3]).total();
    assert!(
        (e - e0).abs() < 5e-4,
        "field-free energy drift over 150 as: {:.2e}",
        e - e0
    );
    // the state must stay in the ground-state manifold
    assert!(density_matrix_distance(&gs.orbitals, &st.psi) < 1e-2);
}

#[test]
fn ptcn_and_rk4_agree_on_driven_dynamics() {
    let (sys, gs) = lda_ground_state(2.0);
    let laser = LaserPulse {
        a0: 0.05,
        omega: 0.25,
        t0: 0.0,
        sigma: 50.0,
        polarization: [0.0, 0.0, 1.0],
    };
    let dt = attosecond_to_au(4.0);
    let mut prop = PtCnPropagator::new(PtCnOptions {
        rho_tol: 1e-9,
        ..Default::default()
    });
    let mut st_pt = TdState::new(gs.orbitals.clone());
    for _ in 0..2 {
        prop.step(&sys, Some(&laser), &mut st_pt, dt).unwrap();
    }
    let mut rk = Rk4Propagator::default();
    let mut st_rk = TdState::new(gs.orbitals.clone());
    for _ in 0..80 {
        rk.step(&sys, Some(&laser), &mut st_rk, dt / 40.0).unwrap();
    }
    let d = density_matrix_distance(&st_pt.psi, &st_rk.psi);
    assert!(d < 5e-4, "PT-CN(2×4as) vs RK4(80×0.1as): {d:.2e}");
}

#[test]
fn hybrid_ptcn_counts_match_paper_bookkeeping() {
    // §7: one PT-CN step = n_scf + 2 exchange-bearing HΨ applications
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .build()
        .unwrap();
    let o = ScfOptions {
        rho_tol: 1e-6,
        max_phi_updates: 2,
        ..Default::default()
    };
    let gs = scf_loop(&sys, o).unwrap();
    let mut prop = PtCnPropagator::default();
    let mut st = TdState::new(gs.orbitals.clone());
    let stats = prop
        .step(&sys, None, &mut st, attosecond_to_au(50.0))
        .unwrap();
    assert_eq!(stats.h_applications, stats.scf_iterations + 1);
    assert!(stats.scf_iterations >= 1);
    assert!(orthonormality_error(&st.psi) < 1e-9);
}
