//! Acceptance pin for the persistent rank engine: a multi-step
//! distributed `Simulation::run` creates its rank threads and their
//! pinned pools **once** — not once per step, and certainly not once per
//! `HΨ`/residual application (a PT-CN step submits several engine jobs,
//! so the old spawn-per-call path would multiply the counts many times
//! over).
//!
//! The spawn counters are process-global, so this binary stays
//! single-test: a second concurrent test spawning pools or ranks would
//! race the deltas.

use pwdft_rt::mpi::rank_threads_spawned;
use pwdft_rt::par::{pools_built, worker_threads_spawned};
use pwdft_rt::prelude::*;

#[test]
fn a_multi_step_distributed_run_spawns_one_rank_team() {
    let (ranks, threads) = (2usize, 2usize);
    let steps = 3usize;
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .distributed(DistributedConfig::new(ranks, threads))
        .build()
        .expect("valid distributed system");
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .expect("valid simulation");

    let ranks_before = rank_threads_spawned();
    let pools_before = pools_built();
    let workers_before = worker_threads_spawned();

    let ts = sim.run().expect("distributed propagation succeeds");
    assert_eq!(ts.propagator, "pt-cn-dist");
    assert!(ts.len() >= steps, "all steps must have run");

    // the whole run — every HΨ and residual of every step — spawned
    // exactly one team of `ranks` rank threads...
    assert_eq!(
        rank_threads_spawned() - ranks_before,
        ranks,
        "rank threads must be spawned once per run, not per step/job"
    );
    // ...each building its pinned pool exactly once. The first nested
    // `pt_par::with_current` inside a pool task may also build the
    // process-wide workerless inline pool (a one-time singleton, zero
    // worker threads) — anything beyond that means pools were rebuilt.
    let pool_delta = pools_built() - pools_before;
    assert!(
        pool_delta == ranks || pool_delta == ranks + 1,
        "expected one pinned pool per rank (± the one-time inline pool), got {pool_delta}"
    );
    assert_eq!(
        worker_threads_spawned() - workers_before,
        ranks * (threads - 1),
        "each rank pool spawns its workers once"
    );
}
