//! The execution-layer determinism contract, end to end: the *same bits*
//! come out of the full pipeline at `PT_NUM_THREADS=1` and `=4`.
//!
//! `pt-par` cuts every index space into chunks by a policy that depends
//! only on the problem size and combines partial results in chunk order,
//! so parallel execution is a fixed re-association of the sequential one —
//! these tests assert exact (`to_bits`) equality, not tolerances. They
//! exercise the config plumbing too: thread counts are pinned through
//! `KsSystemBuilder::parallelism` and `SimulationBuilder::parallelism`.

use pwdft_rt::ham::{
    distributed_fock_apply, distributed_residual, AceOperator, BandDistribution, FockMode,
    FockOperator, PwGrids, ScreenedKernel,
};
use pwdft_rt::linalg::CMat;
use pwdft_rt::mpi::{run_ranks_pinned, RankEngine};
use pwdft_rt::prelude::*;

/// Ground state + 3 PT-CN steps of laser-driven hybrid (HSE06) silicon on
/// a dedicated `threads`-wide pool.
fn hybrid_pipeline(threads: usize) -> (ScfResult, TimeSeries) {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .parallelism(Parallelism::threads(threads))
        .build()
        .expect("valid system");
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let series = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(3)
        .propagator(Box::new(PtCnPropagator::default()))
        .standard_observers()
        .build()
        .expect("valid simulation")
        .run()
        .expect("propagation succeeds");
    (gs, series)
}

fn assert_bits_eq(name: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}[{i}]: {x:e} != {y:e} (parallel schedule leaked into the numbers)"
        );
    }
}

#[test]
fn hybrid_scf_and_ptcn_propagation_are_bit_identical_at_1_and_4_threads() {
    let (gs1, ts1) = hybrid_pipeline(1);
    let (gs4, ts4) = hybrid_pipeline(4);

    // ground state: energies, eigenvalues, density, orbitals — exact
    assert_eq!(
        gs1.energies.total().to_bits(),
        gs4.energies.total().to_bits(),
        "total energy differs across thread counts"
    );
    assert_bits_eq("eigenvalues", &gs1.eigenvalues, &gs4.eigenvalues);
    assert_bits_eq("rho", &gs1.rho, &gs4.rho);
    assert_eq!(gs1.scf_iterations, gs4.scf_iterations);
    assert_eq!(
        gs1.rho_residual.to_bits(),
        gs4.rho_residual.to_bits(),
        "SCF residual differs"
    );
    for j in 0..gs1.orbitals.ncols() {
        for (i, (a, b)) in gs1
            .orbitals
            .col(j)
            .iter()
            .zip(gs4.orbitals.col(j))
            .enumerate()
        {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "orbital ({i},{j}) differs: {a:?} vs {b:?}"
            );
        }
    }

    // time series: every channel of every step — exact
    assert_eq!(ts1.len(), ts4.len());
    assert_eq!(ts1.channel_names(), ts4.channel_names());
    for name in ts1.channel_names() {
        assert_bits_eq(name, ts1.channel(name).unwrap(), ts4.channel(name).unwrap());
    }
    assert_bits_eq("t", &ts1.t, &ts4.t);
    for (s1, s4) in ts1.stats.iter().zip(&ts4.stats) {
        assert_eq!(
            s1.scf_iterations, s4.scf_iterations,
            "PT-CN inner iterations differ"
        );
        assert_eq!(
            s1.rho_residual.to_bits(),
            s4.rho_residual.to_bits(),
            "PT-CN residual differs"
        );
    }
}

#[test]
fn semilocal_scf_is_bit_identical_at_1_and_4_threads() {
    let run = |threads: usize| {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(3.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::threads(threads))
            .build()
            .unwrap();
        scf_loop(&sys, ScfOptions::default()).expect("SCF converges")
    };
    let r1 = run(1);
    let r4 = run(4);
    assert_eq!(r1.energies.total().to_bits(), r4.energies.total().to_bits());
    assert_bits_eq("eigenvalues", &r1.eigenvalues, &r4.eigenvalues);
    assert_bits_eq("rho", &r1.rho, &r4.rho);
    assert_eq!(r1.scf_iterations, r4.scf_iterations);
}

/// Gather a distributed band-major result (one local block per rank) back
/// into the full matrix for comparison.
fn gather_bands(dist: BandDistribution, nrows: usize, blocks: &[CMat]) -> CMat {
    let mut full = CMat::zeros(nrows, dist.n_bands);
    for (r, block) in blocks.iter().enumerate() {
        for (lj, &b) in dist.local_bands(r).iter().enumerate() {
            full.col_mut(b).copy_from_slice(block.col(lj));
        }
    }
    full
}

fn assert_cmat_bits_eq(name: &str, a: &CMat, b: &CMat) {
    assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()), "{name}");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{name}[{i}]: {x:?} != {y:?} (rank/thread schedule leaked into the numbers)"
        );
    }
}

/// The ranks × threads grid, driven through the persistent
/// [`RankEngine`]: both the distributed Fock application (Alg. 2) and the
/// distributed residual (Alg. 3) must produce the *same bits* on every
/// layout in {1,2,3} ranks × {1,4} threads-per-rank. The residual's
/// overlap sums are re-associated over the fixed `OVERLAP_CHUNK_ROWS`
/// grid (one owner per chunk on any rank count, combine in chunk order),
/// which is what closed the old ~1e-12 cross-rank gap.
#[test]
fn distributed_fock_and_residual_over_the_ranks_threads_grid() {
    let sys_grids = PwGrids::new(&silicon_cubic_supercell(1, 1, 1), 2.0);
    let ng = sys_grids.ng();
    let nb = 6;
    let phi = CMat::rand_normalized(ng, nb, 51);
    let psi = CMat::rand_normalized(ng, nb, 52);
    let hpsi = CMat::rand_normalized(ng, nb, 53);
    let half = CMat::rand_normalized(ng, nb, 54);
    let kernel = ScreenedKernel::new(&sys_grids, 0.11);
    let dt = 0.7;

    let run_layout = |ranks: usize, threads: usize| -> (CMat, CMat) {
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: ranks,
        };
        let (g, k) = (&sys_grids, &kernel);
        let (p_, ps_, h_, f_) = (&phi, &psi, &hpsi, &half);
        let mut engine = RankEngine::new(RankLayout::new(ranks, threads), Wire::F64);
        let (blocks, _) = engine
            .run(move |comm| {
                let rank = comm.rank();
                let fock = distributed_fock_apply(
                    comm,
                    g,
                    dist,
                    &dist.take_local(rank, p_),
                    &dist.take_local(rank, ps_),
                    0.25,
                    k,
                );
                let resid = distributed_residual(
                    comm,
                    dist,
                    ng,
                    &dist.take_local(rank, p_),
                    &dist.take_local(rank, h_),
                    &dist.take_local(rank, f_),
                    dt,
                );
                (fock, resid)
            })
            .expect("healthy engine");
        let focks: Vec<CMat> = blocks.iter().map(|(f, _)| f.clone()).collect();
        let resids: Vec<CMat> = blocks.iter().map(|(_, r)| r.clone()).collect();
        (
            gather_bands(dist, ng, &focks),
            gather_bands(dist, ng, &resids),
        )
    };

    let (fock_ref, resid_ref) = run_layout(1, 1);
    // the CI matrix widens the grid along the rank axis via PT_NUM_RANKS
    let mut rank_counts = vec![1usize, 2, 3];
    let env = pwdft_rt::mpi::env_ranks();
    if !rank_counts.contains(&env) {
        rank_counts.push(env);
    }
    for ranks in rank_counts {
        for threads in [1usize, 4] {
            let (fock, resid) = run_layout(ranks, threads);
            // Alg. 2 and Alg. 3: bit-identical across the whole grid
            assert_cmat_bits_eq(&format!("fock {ranks}x{threads}"), &fock_ref, &fock);
            assert_cmat_bits_eq(&format!("residual {ranks}x{threads}"), &resid_ref, &resid);
        }
    }
}

/// The ACE projector over the same grid: ξ built from the distributed
/// `W = V_X Φ` (Alg. 2 over the wire, driver-side Cholesky/trsm) must be
/// bit-identical on every layout in {1,2,3} ranks × {1,4} threads, the
/// serial build must be bit-stable across thread counts, and the
/// projector apply `−ξ(ξ^Hψ)` must be bit-stable across thread counts —
/// together these are why an ACE-mode distributed run is layout-invariant
/// without any per-layout tolerance.
#[test]
fn ace_projector_build_and_apply_over_the_ranks_threads_grid() {
    let grids = PwGrids::new(&silicon_cubic_supercell(1, 1, 1), 2.0);
    let ng = grids.ng();
    let nb = 6;
    let phi = CMat::rand_normalized(ng, nb, 61);
    let psi = CMat::rand_normalized(ng, nb, 62);
    let kernel = ScreenedKernel::new(&grids, 0.11);

    // serial build: 1-thread and 4-thread pools give the same ξ bits
    let serial_xi = |threads: usize| {
        ThreadPool::new(threads).install(|| {
            let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
            AceOperator::new(&grids, &fock, &phi).unwrap().xi().clone()
        })
    };
    assert_cmat_bits_eq("serial ξ 1 vs 4 threads", &serial_xi(1), &serial_xi(4));

    // distributed build: W gathered from the Alg. 2 broadcast loop, ξ
    // factored on the driver — same bits on every layout
    let dist_ace = |ranks: usize, threads: usize| -> AceOperator {
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: ranks,
        };
        let (g, k, p_) = (&grids, &kernel, &phi);
        let mut engine = RankEngine::new(RankLayout::new(ranks, threads), Wire::F64);
        let (blocks, _) = engine
            .run(move |comm| {
                let local = dist.take_local(comm.rank(), p_);
                distributed_fock_apply(comm, g, dist, &local, &local, 0.25, k)
            })
            .expect("healthy engine");
        AceOperator::from_w(&phi, gather_bands(dist, ng, &blocks)).unwrap()
    };
    let xi_ref = dist_ace(1, 1).xi().clone();
    let mut rank_counts = vec![1usize, 2, 3];
    let env = pwdft_rt::mpi::env_ranks();
    if !rank_counts.contains(&env) {
        rank_counts.push(env);
    }
    for ranks in rank_counts {
        for threads in [1usize, 4] {
            let ace = dist_ace(ranks, threads);
            assert_cmat_bits_eq(
                &format!("distributed ξ {ranks}x{threads}"),
                &xi_ref,
                ace.xi(),
            );
        }
    }

    // apply: given one ξ, the projector subtraction is bit-stable across
    // thread counts (per-column self-contained work)
    let ace = AceOperator::from_xi(xi_ref);
    let apply_at = |threads: usize| {
        ThreadPool::new(threads).install(|| {
            let mut out = CMat::rand_normalized(ng, nb, 63);
            ace.apply_block(&psi, &mut out);
            out
        })
    };
    assert_cmat_bits_eq("ACE apply 1 vs 4 threads", &apply_at(1), &apply_at(4));
}

/// ACE-mode engine reuse: building `W = V_X Φ` for successive refreshes on
/// ONE parked rank team gives exactly the bits of spawning a fresh team
/// per refresh — the distributed propagator's every-K-steps projector
/// rebuild costs no determinism.
#[test]
fn ace_refresh_on_a_reused_engine_matches_fresh_spawn_bits() {
    let grids = PwGrids::new(&silicon_cubic_supercell(1, 1, 1), 2.0);
    let ng = grids.ng();
    let nb = 5;
    let kernel = ScreenedKernel::new(&grids, 0.11);
    let dist = BandDistribution {
        n_bands: nb,
        n_ranks: 2,
    };
    let layout = RankLayout::new(2, 2);
    let mut engine = RankEngine::new(layout, Wire::F64);
    for refresh in 0..3u64 {
        let phi = CMat::rand_normalized(ng, nb, 500 + refresh);
        let job = {
            let (g, k, p_) = (&grids, &kernel, &phi);
            move |comm: &mut pwdft_rt::mpi::Comm| {
                let local = dist.take_local(comm.rank(), p_);
                distributed_fock_apply(comm, g, dist, &local, &local, 0.25, k)
            }
        };
        let (reused, _) = engine.run(job).expect("healthy engine");
        let (fresh, _) = run_ranks_pinned(layout, Wire::F64, job);
        let a = AceOperator::from_w(&phi, gather_bands(dist, ng, &reused)).unwrap();
        let b = AceOperator::from_w(&phi, gather_bands(dist, ng, &fresh)).unwrap();
        assert_cmat_bits_eq(&format!("refresh {refresh} ξ"), a.xi(), b.xi());
    }
}

/// Engine reuse is invisible in the numbers: submitting a sequence of
/// "steps" (Alg. 2 + Alg. 3 with step-dependent inputs) to ONE parked
/// rank team produces exactly the bits of spawning a fresh team per step
/// (`run_ranks_pinned`). This is what lets the distributed propagator
/// keep its team alive for a whole `Simulation::run` without any
/// determinism cost.
#[test]
fn engine_reuse_across_steps_matches_spawn_per_step_bits() {
    let sys_grids = PwGrids::new(&silicon_cubic_supercell(1, 1, 1), 2.0);
    let ng = sys_grids.ng();
    let nb = 5;
    let kernel = ScreenedKernel::new(&sys_grids, 0.11);
    let dt = 0.7;
    let dist = BandDistribution {
        n_bands: nb,
        n_ranks: 2,
    };
    let layout = RankLayout::new(2, 2);
    let mut engine = RankEngine::new(layout, Wire::F64);

    for step in 0..4u64 {
        // fresh step-dependent inputs, as a propagation would produce
        let phi = CMat::rand_normalized(ng, nb, 100 + step);
        let psi = CMat::rand_normalized(ng, nb, 200 + step);
        let hpsi = CMat::rand_normalized(ng, nb, 300 + step);
        let half = CMat::rand_normalized(ng, nb, 400 + step);
        let job = {
            let (g, k) = (&sys_grids, &kernel);
            let (p_, ps_, h_, f_) = (&phi, &psi, &hpsi, &half);
            move |comm: &mut pwdft_rt::mpi::Comm| {
                let rank = comm.rank();
                let fock = distributed_fock_apply(
                    comm,
                    g,
                    dist,
                    &dist.take_local(rank, p_),
                    &dist.take_local(rank, ps_),
                    0.25,
                    k,
                );
                let resid = distributed_residual(
                    comm,
                    dist,
                    ng,
                    &dist.take_local(rank, p_),
                    &dist.take_local(rank, h_),
                    &dist.take_local(rank, f_),
                    dt,
                );
                (fock, resid)
            }
        };
        let (reused, _) = engine.run(job).expect("healthy engine");
        let (fresh, _) = run_ranks_pinned(layout, Wire::F64, job);
        for (r, (a, b)) in reused.iter().zip(&fresh).enumerate() {
            assert_cmat_bits_eq(&format!("step {step} rank {r} fock"), &a.0, &b.0);
            assert_cmat_bits_eq(&format!("step {step} rank {r} residual"), &a.1, &b.1);
        }
    }
}

/// The acceptance path: a hybrid PT-CN run driven as ranks × threads
/// through the public builder API produces bit-identical observables on
/// every layout (2 × 2 vs 1 × 1 here — the distributed propagator is
/// selected automatically from `KsSystemBuilder::distributed`).
#[test]
fn hybrid_distributed_run_via_builders_is_layout_invariant() {
    let run_layout = |ranks: usize, threads: usize| -> TimeSeries {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Pbe)
            .hybrid(HybridConfig::hse06())
            .occupations(vec![2.0; 4])
            .distributed(DistributedConfig::new(ranks, threads))
            .build()
            .expect("valid distributed system");
        let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
        let mut sim = SimulationBuilder::new(&sys)
            .initial_orbitals(gs.orbitals.clone())
            .laser(LaserPulse::paper_380nm(
                0.02,
                attosecond_to_au(200.0),
                attosecond_to_au(100.0),
            ))
            .dt(attosecond_to_au(25.0))
            .steps(2)
            .standard_observers()
            .build()
            .expect("valid simulation");
        sim.run().expect("distributed propagation succeeds")
    };
    let ts11 = run_layout(1, 1);
    let ts22 = run_layout(2, 2);
    assert_eq!(ts11.propagator, "pt-cn-dist");
    assert_eq!(ts11.len(), ts22.len());
    assert_eq!(ts11.channel_names(), ts22.channel_names());
    for name in ts11.channel_names() {
        assert_bits_eq(
            name,
            ts11.channel(name).unwrap(),
            ts22.channel(name).unwrap(),
        );
    }
    for (s1, s2) in ts11.stats.iter().zip(&ts22.stats) {
        assert_eq!(s1.scf_iterations, s2.scf_iterations);
        assert_eq!(s1.rho_residual.to_bits(), s2.rho_residual.to_bits());
    }
}

/// The ACE acceptance path: a hybrid run in `Ace { refresh_interval: 2 }`
/// mode (3 steps — so the run crosses a projector-refresh boundary) is
/// bit-identical between the serial-equivalent 1 × 1 layout and 2 × 2.
#[test]
fn hybrid_ace_run_via_builders_is_layout_invariant() {
    let run_layout = |ranks: usize, threads: usize| -> TimeSeries {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Pbe)
            .hybrid(HybridConfig::hse06())
            .occupations(vec![2.0; 4])
            .exchange_mode(ExchangeMode::Ace {
                refresh_interval: 2,
            })
            .distributed(DistributedConfig::new(ranks, threads))
            .build()
            .expect("valid distributed ACE system");
        let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
        let mut sim = SimulationBuilder::new(&sys)
            .initial_orbitals(gs.orbitals.clone())
            .laser(LaserPulse::paper_380nm(
                0.02,
                attosecond_to_au(200.0),
                attosecond_to_au(100.0),
            ))
            .dt(attosecond_to_au(25.0))
            .steps(3)
            .standard_observers()
            .build()
            .expect("valid simulation");
        sim.run().expect("ACE propagation succeeds")
    };
    let ts11 = run_layout(1, 1);
    let ts22 = run_layout(2, 2);
    assert_eq!(ts11.propagator, "pt-cn-dist");
    assert_eq!(ts11.len(), ts22.len());
    for name in ts11.channel_names() {
        assert_bits_eq(
            name,
            ts11.channel(name).unwrap(),
            ts22.channel(name).unwrap(),
        );
    }
    for (s1, s2) in ts11.stats.iter().zip(&ts22.stats) {
        assert_eq!(s1.scf_iterations, s2.scf_iterations);
        assert_eq!(s1.rho_residual.to_bits(), s2.rho_residual.to_bits());
    }
}

#[test]
fn install_scoping_matches_builder_plumbing() {
    // pinning threads via ThreadPool::install around a default-parallelism
    // system must give the same bits as the builder route
    let via_install = |threads: usize| {
        let pool = ThreadPool::new(threads);
        pool.install(|| {
            let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
                .ecut(2.0)
                .xc(XcKind::Lda)
                .build()
                .unwrap();
            scf_loop(&sys, ScfOptions::default())
                .expect("SCF converges")
                .energies
                .total()
        })
    };
    let via_builder = {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::threads(4))
            .build()
            .unwrap();
        scf_loop(&sys, ScfOptions::default())
            .expect("SCF converges")
            .energies
            .total()
    };
    assert_eq!(via_install(1).to_bits(), via_install(4).to_bits());
    assert_eq!(via_install(4).to_bits(), via_builder.to_bits());
}
