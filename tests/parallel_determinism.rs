//! The execution-layer determinism contract, end to end: the *same bits*
//! come out of the full pipeline at `PT_NUM_THREADS=1` and `=4`.
//!
//! `pt-par` cuts every index space into chunks by a policy that depends
//! only on the problem size and combines partial results in chunk order,
//! so parallel execution is a fixed re-association of the sequential one —
//! these tests assert exact (`to_bits`) equality, not tolerances. They
//! exercise the config plumbing too: thread counts are pinned through
//! `KsSystemBuilder::parallelism` and `SimulationBuilder::parallelism`.

use pwdft_rt::prelude::*;

/// Ground state + 3 PT-CN steps of laser-driven hybrid (HSE06) silicon on
/// a dedicated `threads`-wide pool.
fn hybrid_pipeline(threads: usize) -> (ScfResult, TimeSeries) {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .parallelism(Parallelism::threads(threads))
        .build()
        .expect("valid system");
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let series = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(3)
        .propagator(Box::new(PtCnPropagator::default()))
        .standard_observers()
        .build()
        .expect("valid simulation")
        .run()
        .expect("propagation succeeds");
    (gs, series)
}

fn assert_bits_eq(name: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}[{i}]: {x:e} != {y:e} (parallel schedule leaked into the numbers)"
        );
    }
}

#[test]
fn hybrid_scf_and_ptcn_propagation_are_bit_identical_at_1_and_4_threads() {
    let (gs1, ts1) = hybrid_pipeline(1);
    let (gs4, ts4) = hybrid_pipeline(4);

    // ground state: energies, eigenvalues, density, orbitals — exact
    assert_eq!(
        gs1.energies.total().to_bits(),
        gs4.energies.total().to_bits(),
        "total energy differs across thread counts"
    );
    assert_bits_eq("eigenvalues", &gs1.eigenvalues, &gs4.eigenvalues);
    assert_bits_eq("rho", &gs1.rho, &gs4.rho);
    assert_eq!(gs1.scf_iterations, gs4.scf_iterations);
    assert_eq!(
        gs1.rho_residual.to_bits(),
        gs4.rho_residual.to_bits(),
        "SCF residual differs"
    );
    for j in 0..gs1.orbitals.ncols() {
        for (i, (a, b)) in gs1
            .orbitals
            .col(j)
            .iter()
            .zip(gs4.orbitals.col(j))
            .enumerate()
        {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "orbital ({i},{j}) differs: {a:?} vs {b:?}"
            );
        }
    }

    // time series: every channel of every step — exact
    assert_eq!(ts1.len(), ts4.len());
    assert_eq!(ts1.channel_names(), ts4.channel_names());
    for name in ts1.channel_names() {
        assert_bits_eq(name, ts1.channel(name).unwrap(), ts4.channel(name).unwrap());
    }
    assert_bits_eq("t", &ts1.t, &ts4.t);
    for (s1, s4) in ts1.stats.iter().zip(&ts4.stats) {
        assert_eq!(
            s1.scf_iterations, s4.scf_iterations,
            "PT-CN inner iterations differ"
        );
        assert_eq!(
            s1.rho_residual.to_bits(),
            s4.rho_residual.to_bits(),
            "PT-CN residual differs"
        );
    }
}

#[test]
fn semilocal_scf_is_bit_identical_at_1_and_4_threads() {
    let run = |threads: usize| {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(3.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::threads(threads))
            .build()
            .unwrap();
        scf_loop(&sys, ScfOptions::default()).expect("SCF converges")
    };
    let r1 = run(1);
    let r4 = run(4);
    assert_eq!(r1.energies.total().to_bits(), r4.energies.total().to_bits());
    assert_bits_eq("eigenvalues", &r1.eigenvalues, &r4.eigenvalues);
    assert_bits_eq("rho", &r1.rho, &r4.rho);
    assert_eq!(r1.scf_iterations, r4.scf_iterations);
}

#[test]
fn install_scoping_matches_builder_plumbing() {
    // pinning threads via ThreadPool::install around a default-parallelism
    // system must give the same bits as the builder route
    let via_install = |threads: usize| {
        let pool = ThreadPool::new(threads);
        pool.install(|| {
            let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
                .ecut(2.0)
                .xc(XcKind::Lda)
                .build()
                .unwrap();
            scf_loop(&sys, ScfOptions::default())
                .expect("SCF converges")
                .energies
                .total()
        })
    };
    let via_builder = {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::threads(4))
            .build()
            .unwrap();
        scf_loop(&sys, ScfOptions::default())
            .expect("SCF converges")
            .energies
            .total()
    };
    assert_eq!(via_install(1).to_bits(), via_install(4).to_bits());
    assert_eq!(via_install(4).to_bits(), via_builder.to_bits());
}
