//! The `pt-io` acceptance path: a run checkpointed at step k and resumed
//! produces a `TimeSeries` with `to_bits`-equal channels to the
//! uninterrupted run — serially and at the 2 × 2 ranks × threads layout —
//! and malformed snapshots surface as typed `PtError`s, never panics.

use pwdft_rt::core::{latest_checkpoint, RunCheckpoint};
use pwdft_rt::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pt_ckpt_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_series_bits_eq(a: &TimeSeries, b: &TimeSeries) {
    assert_eq!(a.len(), b.len(), "step counts differ");
    assert_eq!(a.channel_names(), b.channel_names());
    for name in a.channel_names() {
        for (i, (x, y)) in a
            .channel(name)
            .unwrap()
            .iter()
            .zip(b.channel(name).unwrap())
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "channel '{name}'[{i}]: {x:e} != {y:e} (resume leaked into the numbers)"
            );
        }
    }
    for (i, (x, y)) in a.t.iter().zip(&b.t).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "t[{i}]");
    }
    for (i, (sa, sb)) in a.stats.iter().zip(&b.stats).enumerate() {
        assert_eq!(sa.scf_iterations, sb.scf_iterations, "stats[{i}]");
        assert_eq!(sa.h_applications, sb.h_applications, "stats[{i}]");
        assert_eq!(sa.rho_residual.to_bits(), sb.rho_residual.to_bits());
        assert_eq!(sa.converged, sb.converged);
    }
}

fn lda_system() -> KsSystem {
    KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Lda)
        .build()
        .unwrap()
}

fn laser() -> LaserPulse {
    LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0))
}

#[test]
fn serial_killed_and_resumed_run_is_bit_identical() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let steps = 4usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();

    // the same 4-step run with rolling snapshots every 2 steps (keep=2
    // retains both the mid-window and the final one)
    let dir = tmp_dir("serial");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(2, &dir)
        .build()
        .unwrap();
    sim.run().unwrap();

    // a job kill at step k means the process vanishes and only the disk
    // state survives — here: the step-2 snapshot, mid-window
    let mid = dir.join("ckpt_00000002.ptio");
    assert!(mid.exists(), "mid-window snapshot missing");
    let ck_mid = RunCheckpoint::read(&mid).unwrap();
    assert_eq!(ck_mid.series.len(), 2);
    assert_eq!(ck_mid.steps_remaining, 2);
    assert!(ck_mid.phi.is_none(), "semi-local run must not store phi");
    let mut resumed = Simulation::resume(&sys, &mid).unwrap();
    let merged = resumed.run().unwrap();
    assert_series_bits_eq(&uninterrupted, &merged);

    // the final snapshot reports a finished window and resumes to a no-op
    let last = latest_checkpoint(&dir).unwrap().expect("snapshot written");
    let ck_last = RunCheckpoint::read(&last).unwrap();
    assert_eq!(ck_last.series.len(), 4);
    assert_eq!(ck_last.steps_remaining, 0);
    let restored = Simulation::resume(&sys, &last).unwrap().run().unwrap();
    assert_series_bits_eq(&uninterrupted, &restored);
    let _ = std::fs::remove_dir_all(&dir);

    // rolling retention: keep=1 leaves exactly one (the newest) snapshot
    let dir2 = tmp_dir("keep1");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(1, &dir2)
        .checkpoint_keep(1)
        .build()
        .unwrap();
    sim.run().unwrap();
    let files: Vec<_> = std::fs::read_dir(&dir2)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().into_string().unwrap()))
        .collect();
    assert_eq!(files, vec!["ckpt_00000004.ptio".to_string()], "{files:?}");
    let _ = std::fs::remove_dir_all(dir2);
}

#[test]
fn rolling_pruning_never_touches_another_runs_snapshots() {
    // a stale high-numbered snapshot from an earlier trajectory shares the
    // directory: the new run's rolling window must neither delete it nor
    // let it crowd out (i.e. cause deletion of) the new run's own files
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let dir = tmp_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    let stale = dir.join("ckpt_99999999.ptio");
    std::fs::write(&stale, b"an earlier run's snapshot").unwrap();
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(attosecond_to_au(25.0))
        .steps(3)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_keep(1)
        .build()
        .unwrap();
    sim.run().unwrap();
    assert!(stale.exists(), "stale snapshot was deleted");
    let own = dir.join("ckpt_00000003.ptio");
    assert!(
        own.exists(),
        "the run's own newest snapshot was pruned away"
    );
    assert!(
        !dir.join("ckpt_00000001.ptio").exists(),
        "keep=1 not applied"
    );
    // the surviving own snapshot resumes fine
    assert!(Simulation::resume(&sys, &own).is_ok());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn distributed_2x2_killed_and_resumed_run_is_bit_identical() {
    // the acceptance layout: ranks × threads = 2 × 2 through the builder
    // API (hybrid HSE06, distributed PT-CN selected automatically)
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .distributed(DistributedConfig::new(2, 2))
        .build()
        .unwrap();
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let steps = 2usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(uninterrupted.propagator, "pt-cn-dist");

    let dir = tmp_dir("dist");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .build()
        .unwrap();
    sim.run().unwrap();
    // resume from the step-1 snapshot and finish the trajectory
    let mid = dir.join("ckpt_00000001.ptio");
    assert!(mid.exists());
    let ck = RunCheckpoint::read(&mid).unwrap();
    assert_eq!(ck.steps_remaining, 1);
    // hybrid snapshot carries Φ explicitly (Φ = Ψ in the PT gauge)
    let phi = ck.phi.as_ref().expect("hybrid snapshot records phi");
    assert_eq!((phi.nrows(), phi.ncols()), (ck.psi.nrows(), ck.psi.ncols()));
    let mut resumed = Simulation::resume(&sys, &mid).unwrap();
    let merged = resumed.run().unwrap();
    assert_eq!(merged.propagator, "pt-cn-dist");
    assert_series_bits_eq(&uninterrupted, &merged);
    let _ = std::fs::remove_dir_all(dir);
}

/// `system_mode: true` pins `Ace { refresh_interval: 3 }` on the system
/// builder; `false` leaves the system at `Full` so the run can set the
/// mode through `SimulationBuilder::exchange_mode` instead.
fn hybrid_ace_system(distributed: Option<DistributedConfig>, system_mode: bool) -> KsSystem {
    let mut b = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4]);
    if system_mode {
        b = b.exchange_mode(ExchangeMode::Ace {
            refresh_interval: 3,
        });
    }
    if let Some(cfg) = distributed {
        b = b.distributed(cfg);
    }
    b.build().unwrap()
}

/// Kill/resume **inside an ACE refresh window** (`refresh_interval: 3`,
/// snapshot after step 2 — the projector was built at step 1 and is not
/// due for rebuild until step 4). The snapshot carries the frozen ξ
/// verbatim; a resume that rebuilt it from the restored Ψ would produce a
/// different projector and bit-diverge from the uninterrupted run.
#[test]
fn ace_mid_refresh_window_resume_is_bit_identical() {
    // the mode arrives via the run-level override here — the snapshot
    // must round-trip it so the resumed propagator keeps ACE without the
    // system saying so
    let sys = hybrid_ace_system(None, false);
    let mode = ExchangeMode::Ace {
        refresh_interval: 3,
    };
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let steps = 4usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .exchange_mode(mode)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();

    let dir = tmp_dir("ace_serial");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .exchange_mode(mode)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_keep(steps)
        .build()
        .unwrap();
    sim.run().unwrap();

    let mid = dir.join("ckpt_00000002.ptio");
    let ck = RunCheckpoint::read(&mid).unwrap();
    assert_eq!(ck.steps_remaining, 2);
    match &ck.propagator {
        PropagatorState::PtCn { exchange, ace, .. } => {
            assert_eq!(
                *exchange,
                Some(ExchangeMode::Ace {
                    refresh_interval: 3
                })
            );
            let cap = ace.as_ref().expect("mid-window snapshot must carry ξ");
            assert_eq!(
                cap.steps_since_refresh, 2,
                "refresh at step 1, two steps propagated under the frozen ξ"
            );
            assert_eq!(cap.xi.nrows(), ck.psi.nrows());
        }
        other => panic!("expected PtCn state, got {other:?}"),
    }
    let mut resumed = Simulation::resume(&sys, &mid).unwrap();
    let merged = resumed.run().unwrap();
    assert_series_bits_eq(&uninterrupted, &merged);
    let _ = std::fs::remove_dir_all(dir);
}

/// The same mid-refresh-window contract at the 2 × 2 ranks × threads
/// layout: the distributed propagator restores the snapshotted ξ and
/// finishes the window bit-identically to the uninterrupted run.
#[test]
fn distributed_ace_mid_refresh_window_resume_is_bit_identical() {
    // here the mode comes from the system builder (no run-level override)
    let sys = hybrid_ace_system(Some(DistributedConfig::new(2, 2)), true);
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let steps = 3usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(uninterrupted.propagator, "pt-cn-dist");

    let dir = tmp_dir("ace_dist");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_keep(steps)
        .build()
        .unwrap();
    sim.run().unwrap();

    let mid = dir.join("ckpt_00000002.ptio");
    let ck = RunCheckpoint::read(&mid).unwrap();
    match &ck.propagator {
        PropagatorState::PtCnDistributed { ace, .. } => {
            let cap = ace.as_ref().expect("mid-window snapshot must carry ξ");
            assert_eq!(cap.steps_since_refresh, 2);
        }
        other => panic!("expected PtCnDistributed state, got {other:?}"),
    }
    let mut resumed = Simulation::resume(&sys, &mid).unwrap();
    let merged = resumed.run().unwrap();
    assert_series_bits_eq(&uninterrupted, &merged);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn snapshot_from_a_different_system_shape_is_a_typed_error() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let dir = tmp_dir("shape");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(attosecond_to_au(25.0))
        .steps(1)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .build()
        .unwrap();
    sim.run().unwrap();
    let ckpt = latest_checkpoint(&dir).unwrap().unwrap();

    // same structure, different band count → signature mismatch
    let other = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Lda)
        .occupations(vec![2.0; 4])
        .build()
        .unwrap();
    assert_ne!(other.n_bands(), sys.n_bands());
    match Simulation::resume(&other, &ckpt) {
        Err(PtError::InvalidConfig(msg)) => {
            assert!(msg.contains("different system"), "{msg}")
        }
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("resume on a different system unexpectedly succeeded"),
    }

    // different cutoff → different plane-wave count → typed error too
    let coarser = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(3.0)
        .xc(XcKind::Lda)
        .occupations(vec![2.0; 4])
        .build()
        .unwrap();
    assert!(matches!(
        Simulation::resume(&coarser, &ckpt),
        Err(PtError::InvalidConfig(_))
    ));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_snapshots_never_panic() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let dir = tmp_dir("malformed");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(attosecond_to_au(25.0))
        .steps(1)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .build()
        .unwrap();
    sim.run().unwrap();
    let ckpt = latest_checkpoint(&dir).unwrap().unwrap();
    let good = std::fs::read(&ckpt).unwrap();

    // truncations at every interesting depth
    for keep in [0usize, 10, 23, good.len() / 2, good.len() - 1] {
        std::fs::write(&ckpt, &good[..keep]).unwrap();
        assert!(
            matches!(
                Simulation::resume(&sys, &ckpt),
                Err(PtError::SnapshotFormat { .. })
            ),
            "truncation to {keep} bytes"
        );
    }
    // corrupted payload byte → CRC failure
    let mut bad = good.clone();
    bad[40] ^= 0x80;
    std::fs::write(&ckpt, &bad).unwrap();
    match Simulation::resume(&sys, &ckpt) {
        Err(PtError::SnapshotFormat { reason, .. }) => {
            assert!(reason.contains("crc"), "{reason}")
        }
        Err(other) => panic!("expected SnapshotFormat, got {other:?}"),
        Ok(_) => panic!("corrupt snapshot unexpectedly resumed"),
    }
    // wrong format version
    let mut vbad = good.clone();
    vbad[8] = 0x7F;
    std::fs::write(&ckpt, &vbad).unwrap();
    match Simulation::resume(&sys, &ckpt) {
        Err(PtError::SnapshotFormat { reason, .. }) => {
            assert!(reason.contains("format version"), "{reason}")
        }
        Err(other) => panic!("expected SnapshotFormat, got {other:?}"),
        Ok(_) => panic!("wrong-version snapshot unexpectedly resumed"),
    }
    // not a snapshot at all
    std::fs::write(&ckpt, b"definitely not a snapshot").unwrap();
    assert!(matches!(
        Simulation::resume(&sys, &ckpt),
        Err(PtError::SnapshotFormat { .. })
    ));
    // missing file → Io
    assert!(matches!(
        Simulation::resume(&sys, dir.join("nope.ptio")),
        Err(PtError::Io { .. })
    ));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn f32_payload_snapshots_resume_close_but_not_bit_exact() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let steps = 2usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();
    let dir = tmp_dir("f32");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_wire(Wire::F32)
        .build()
        .unwrap();
    sim.run().unwrap();
    let mid = dir.join("ckpt_00000001.ptio");
    let mut resumed = Simulation::resume(&sys, &mid).unwrap();
    let merged = resumed.run().unwrap();
    // the ψ payload was quantized to f32: trajectories agree to ~1e-6
    // relative but NOT bit-exactly — the documented Wire::F32 caveat
    let a = uninterrupted.channel("energy").unwrap();
    let b = merged.channel("energy").unwrap();
    let last = a.len() - 1;
    assert!(
        (a[last] - b[last]).abs() <= 1e-5 * a[last].abs(),
        "{} vs {}",
        a[last],
        b[last]
    );
    assert_ne!(
        a[last].to_bits(),
        b[last].to_bits(),
        "f32 payload unexpectedly preserved the bits — wire mode not exercised?"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancelled_then_resumed_run_is_bit_identical() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let steps = 4usize;
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();

    // trip the token from inside the step tap after the second step; the
    // rolling cadence (every 3) is deliberately unaligned with the cancel
    // point, so the boundary snapshot must come from the cancel path
    let dir = tmp_dir("cancel");
    let token = CancelToken::new();
    let tap_token = token.clone();
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(steps)
        .standard_observers()
        .checkpoint_every(3, &dir)
        .cancel_token(token.clone())
        .step_tap(move |u| {
            if u.step_index == 1 {
                tap_token.cancel();
            }
        })
        .build()
        .unwrap();
    match sim.run() {
        Err(PtError::Cancelled { completed_steps }) => assert_eq!(completed_steps, 2),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(token.is_cancelled());
    // the two committed steps survive for post-mortems
    let partial = sim.take_partial_series().expect("partial series kept");
    assert_eq!(partial.len(), 2);
    // and the cancel wrote a resumable boundary snapshot
    assert!(dir.join("ckpt_00000002.ptio").exists());
    let mut resumed = Simulation::resume_latest(&sys, &dir)
        .unwrap()
        .expect("cancel snapshot found");
    let merged = resumed.run().unwrap();
    assert_series_bits_eq(&uninterrupted, &merged);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_latest_skips_corrupt_snapshots_in_favor_of_older_valid_ones() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let dir = tmp_dir("skipnewest");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser())
        .dt(attosecond_to_au(25.0))
        .steps(3)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_keep(3)
        .build()
        .unwrap();
    let uninterrupted = sim.run().unwrap();
    // corrupt the newest snapshot the way a kill -9 mid-write would:
    // truncate it — resume_latest must fall back to the step-2 snapshot
    // and still finish with identical bits
    let newest = dir.join("ckpt_00000003.ptio");
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
    let mut resumed = Simulation::resume_latest(&sys, &dir)
        .unwrap()
        .expect("older valid snapshot found");
    assert_eq!(
        resumed.restored_series().map(TimeSeries::len),
        Some(2),
        "should have fallen back to the step-2 snapshot"
    );
    let merged = resumed.run().unwrap();
    assert_series_bits_eq(&uninterrupted, &merged);
    // an empty dir resumes to None (fresh start), not an error
    let empty = tmp_dir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(Simulation::resume_latest(&sys, &empty).unwrap().is_none());
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(empty);
}

#[test]
fn exported_series_tables_round_trip_through_json_and_csv() {
    let sys = lda_system();
    let gs = scf_loop(&sys, ScfOptions::default()).unwrap();
    let series = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(attosecond_to_au(25.0))
        .steps(2)
        .standard_observers()
        .build()
        .unwrap()
        .run()
        .unwrap();
    let table = series.to_table().unwrap();
    assert_eq!(table.n_rows(), 2);
    let energy = table.get("energy").unwrap();
    assert_eq!(energy.len(), 2);
    let json = table.to_json();
    assert!(json.contains("\"propagator\": \"pt-cn\""), "{json}");
    assert!(json.contains("\"energy\""));
    let csv = table.to_csv();
    assert!(csv.lines().any(|l| l.contains("energy")));
    // JSON numbers parse back to the exact recorded bits
    let tail = json.split("\"t\": [").nth(1).unwrap();
    let first_t: f64 = tail
        .split([',', ']'])
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(first_t.to_bits(), series.t[0].to_bits());
}
