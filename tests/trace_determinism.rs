//! Tracing is observability, not physics: arming pt-trace must not move
//! a single bit of any result, on any `ranks × threads` layout.
//!
//! Two contracts are pinned here:
//!
//! * **Neutrality.** A hybrid PT-CN run produces *identical bits* with
//!   tracing on and off, across the {1,2} ranks × {1,4} threads grid.
//!   The off-mode reference is the 1 × 1 layout; every traced layout is
//!   compared against it, so one pass covers both tracing-neutrality and
//!   layout-invariance. (Span timestamps live only in `StepStats.phases`
//!   and the trace buffer — neither is a bit-compared surface.)
//! * **Counter exactness.** The counters are operation counts, not
//!   samples: an ACE stale-window step freezes the projector and runs
//!   *zero* pair FFTs (see `ace_ptcn_step`), so the per-step `PairFfts`
//!   delta must be exactly 0 between refreshes and positive on every
//!   refresh step — same for `AceRefreshRounds`.

use pwdft_rt::prelude::*;
use pwdft_rt::trace;
use std::sync::{Arc, Mutex};

/// pt-trace's armed flag and counters are process-global; the tests in
/// this binary toggle them, so they take this gate to run one at a time.
static TRACE_GATE: Mutex<()> = Mutex::new(());

/// Ground state + 2 PT-CN steps of laser-driven hybrid (HSE06) silicon
/// on a `ranks × threads` layout through the public builders.
fn hybrid_layout_run(ranks: usize, threads: usize) -> TimeSeries {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .distributed(DistributedConfig::new(ranks, threads))
        .build()
        .expect("valid distributed system");
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(2)
        .standard_observers()
        .build()
        .expect("valid simulation");
    sim.run().expect("propagation succeeds")
}

fn assert_series_bits_eq(label: &str, a: &TimeSeries, b: &TimeSeries) {
    assert_eq!(a.len(), b.len(), "{label}: step count");
    assert_eq!(a.channel_names(), b.channel_names(), "{label}: channels");
    for name in a.channel_names() {
        let (xa, xb) = (a.channel(name).unwrap(), b.channel(name).unwrap());
        for (i, (x, y)) in xa.iter().zip(xb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {name}[{i}]: {x:e} != {y:e} (tracing moved the numbers)"
            );
        }
    }
    for (i, (x, y)) in a.t.iter().zip(&b.t).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: t[{i}]");
    }
    for (i, (sa, sb)) in a.stats.iter().zip(&b.stats).enumerate() {
        assert_eq!(
            sa.scf_iterations, sb.scf_iterations,
            "{label}: step {i} inner iterations"
        );
        assert_eq!(
            sa.h_applications, sb.h_applications,
            "{label}: step {i} H applications"
        );
        assert_eq!(
            sa.rho_residual.to_bits(),
            sb.rho_residual.to_bits(),
            "{label}: step {i} residual"
        );
    }
}

#[test]
fn tracing_on_is_bit_identical_to_off_across_the_layout_grid() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);
    let reference = hybrid_layout_run(1, 1);

    trace::set_enabled(true);
    let mark = trace::mark();
    for ranks in [1usize, 2] {
        for threads in [1usize, 4] {
            let ts = hybrid_layout_run(ranks, threads);
            assert_series_bits_eq(&format!("traced {ranks}x{threads}"), &reference, &ts);
        }
    }
    // and the instrumentation really was live while those bits came out
    let counted = trace::counters_since(&mark);
    assert!(
        counted.get(trace::Counter::PairFfts) > 0,
        "no pair FFTs counted"
    );
    assert!(
        counted.get(trace::Counter::StepsCommitted) >= 8,
        "steps not counted"
    );
    trace::set_enabled(false);
}

/// Per-step counter deltas through the step tap: with
/// `Ace { refresh_interval: 3 }` the projector is rebuilt on steps 1 and
/// 4 (the slot starts empty; a refresh resets `steps_since_refresh` to 1)
/// and frozen in between — so pair-FFT work must be *exactly zero* on the
/// stale-window steps 2, 3 and 5.
#[test]
fn ace_stale_window_steps_record_exactly_zero_pair_ffts() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);

    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 4])
        .parallelism(Parallelism::threads(1))
        .build()
        .expect("valid system");
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
    // no observers: the only pair-FFT source left is the propagator itself
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(LaserPulse::paper_380nm(
            0.02,
            attosecond_to_au(200.0),
            attosecond_to_au(100.0),
        ))
        .dt(attosecond_to_au(25.0))
        .steps(5)
        .exchange_mode(ExchangeMode::Ace {
            refresh_interval: 3,
        })
        .build()
        .expect("valid ACE simulation");

    // snapshot (pair_ffts, ace_refresh_rounds) at every committed step
    let deltas: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&deltas);
    let mut last = (
        trace::counter_value(trace::Counter::PairFfts),
        trace::counter_value(trace::Counter::AceRefreshRounds),
    );
    sim.set_step_tap(move |_update| {
        let now = (
            trace::counter_value(trace::Counter::PairFfts),
            trace::counter_value(trace::Counter::AceRefreshRounds),
        );
        sink.lock().unwrap().push((now.0 - last.0, now.1 - last.1));
        last = now;
    });
    sim.run().expect("ACE propagation succeeds");
    trace::set_enabled(false);

    let deltas = deltas.lock().unwrap_or_else(|e| e.into_inner()).clone();
    assert_eq!(deltas.len(), 5, "tap fired once per committed step");
    for (i, &(pair_ffts, refresh_rounds)) in deltas.iter().enumerate() {
        // 0-based: refresh when i % 3 == 0 (steps 1 and 4), stale otherwise
        if i % 3 == 0 {
            assert!(
                pair_ffts > 0,
                "step {}: refresh step must rebuild ξ through pair FFTs",
                i + 1
            );
            assert!(
                refresh_rounds > 0,
                "step {}: refresh step must run projector rounds",
                i + 1
            );
        } else {
            assert_eq!(
                pair_ffts,
                0,
                "step {}: stale-window step leaked pair FFTs — the frozen \
                 projector contract is broken",
                i + 1
            );
            assert_eq!(
                refresh_rounds,
                0,
                "step {}: stale-window step ran refresh rounds",
                i + 1
            );
        }
    }
}
