//! Tier-1 gate: the workspace must be clean under `pt-analyze`.
//!
//! This runs the same check as `cargo run -p pt-analyze` (the CI job) but
//! in-process, so plain `cargo test` already enforces the invariant lints:
//! every violation must be fixed or carry a reasoned
//! `// pt-analyze: allow(<lint>) — <reason>` pragma.

use std::path::Path;

#[test]
fn workspace_is_clean_under_pt_analyze() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = pt_analyze::analyze_workspace(root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found too few files — wrong root?"
    );
    assert!(
        report.clean(),
        "pt-analyze found {} violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.lint, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_registered_lint_has_a_rationale_and_unique_name() {
    let mut names: Vec<&str> = pt_analyze::LINTS.iter().map(|l| l.name).collect();
    for l in pt_analyze::LINTS {
        assert!(!l.rationale.is_empty(), "{} has no rationale", l.name);
        assert!(
            !pt_analyze::META_LINTS.contains(&l.name),
            "{} collides with a meta lint",
            l.name
        );
    }
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), pt_analyze::LINTS.len(), "duplicate lint names");
}
