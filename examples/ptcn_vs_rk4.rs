//! The paper's headline comparison at laptop scale: PT-CN takes 50 as
//! steps; RK4 is limited to sub-attosecond steps by stability. We measure
//! both the stability ceiling and the wall-clock ratio on a real Si₈ cell.
//!
//! Run with: `cargo run --release --example ptcn_vs_rk4`

use pwdft_rt::core::{
    density_matrix_distance, max_stable_rk4_dt, PtCnOptions, PtCnPropagator, Rk4Propagator,
    TdState,
};
use pwdft_rt::ham::KsSystem;
use pwdft_rt::lattice::silicon_cubic_supercell;
use pwdft_rt::num::units::{attosecond_to_au, au_to_attosecond};
use pwdft_rt::scf::{scf_loop, ScfOptions};
use pwdft_rt::xc::XcKind;
use std::time::Instant;

fn main() {
    let structure = silicon_cubic_supercell(1, 1, 1);
    let sys = KsSystem::new(structure, 2.5, XcKind::Lda, None);
    let mut opts = ScfOptions::default();
    opts.rho_tol = 1e-7;
    let gs = scf_loop(&sys, opts);

    let ceiling = max_stable_rk4_dt(&sys, &gs.orbitals, 10, 0.05, 4.0);
    println!(
        "RK4 stability ceiling at E_cut = {} Ha: {:.2} as (paper at 10 Ha: ~0.5 as)",
        sys.grids.ecut,
        au_to_attosecond(ceiling)
    );

    // propagate the same 50 as window both ways
    let window = attosecond_to_au(50.0);
    let t0 = Instant::now();
    let prop = PtCnPropagator { sys: &sys, laser: None, opts: PtCnOptions::default() };
    let mut st_pt = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let stats = prop.step(&mut st_pt, window);
    let t_ptcn = t0.elapsed();

    let rk = Rk4Propagator { sys: &sys, laser: None };
    let dt_rk = 0.8 * ceiling;
    let n_rk = (window / dt_rk).ceil() as usize;
    let t0 = Instant::now();
    let mut st_rk = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    for _ in 0..n_rk {
        rk.step(&mut st_rk, window / n_rk as f64);
    }
    let t_rk4 = t0.elapsed();

    println!(
        "PT-CN: 1 step ({} SCF iterations) in {:.2?}",
        stats.scf_iterations, t_ptcn
    );
    println!("RK4:   {n_rk} steps in {t_rk4:.2?}");
    println!(
        "wall-clock ratio: {:.1}x (paper on Summit: 20-30x)",
        t_rk4.as_secs_f64() / t_ptcn.as_secs_f64()
    );
    println!(
        "gauge-invariant agreement (density-matrix distance): {:.2e}",
        density_matrix_distance(&st_pt.psi, &st_rk.psi)
    );
}
