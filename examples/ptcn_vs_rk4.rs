//! The paper's headline comparison at laptop scale: PT-CN takes 50 as
//! steps; RK4 is limited to sub-attosecond steps by stability. We measure
//! both the stability ceiling and the wall-clock ratio on a real Si₈ cell,
//! selecting each propagator **at runtime** through `Box<dyn Propagator>` —
//! the same `Simulation` setup runs both.
//!
//! Run with: `cargo run --release --example ptcn_vs_rk4`

use pwdft_rt::prelude::*;
use std::time::Instant;

fn main() -> Result<(), PtError> {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.5)
        .xc(XcKind::Lda)
        .build()?;
    let opts = ScfOptions {
        rho_tol: 1e-7,
        ..Default::default()
    };
    let gs = scf_loop(&sys, opts)?;

    let ceiling = max_stable_rk4_dt(&sys, &gs.orbitals, 10, 0.05, 4.0)?;
    println!(
        "RK4 stability ceiling at E_cut = {} Ha: {:.2} as (paper at 10 Ha: ~0.5 as)",
        sys.grids.ecut,
        au_to_attosecond(ceiling)
    );

    // propagate the same 50 as window with both propagators, chosen at
    // runtime: (name, boxed propagator, step count)
    let window = attosecond_to_au(50.0);
    let n_rk = (window / (0.8 * ceiling)).ceil() as usize;
    let runs: Vec<(Box<dyn Propagator>, usize)> = vec![
        (Box::new(PtCnPropagator::default()), 1),
        (Box::new(Rk4Propagator::default()), n_rk),
    ];

    let mut finals = Vec::new();
    let mut elapsed = Vec::new();
    for (prop, n_steps) in runs {
        let name = prop.name();
        let mut sim = SimulationBuilder::new(&sys)
            .initial_orbitals(gs.orbitals.clone())
            .dt(window / n_steps as f64)
            .steps(n_steps)
            .propagator(prop)
            .build()?;
        let t0 = Instant::now();
        let series = sim.run()?;
        let dt_wall = t0.elapsed();
        let scf_total: usize = series.stats.iter().map(|s| s.scf_iterations).sum();
        println!("{name}: {n_steps} steps ({scf_total} SCF iterations) in {dt_wall:.2?}");
        finals.push(sim.state().psi.clone());
        elapsed.push(dt_wall);
    }

    println!(
        "wall-clock ratio: {:.1}x (paper on Summit: 20-30x)",
        elapsed[1].as_secs_f64() / elapsed[0].as_secs_f64()
    );
    println!(
        "gauge-invariant agreement (density-matrix distance): {:.2e}",
        density_matrix_distance(&finals[0], &finals[1])
    );
    Ok(())
}
