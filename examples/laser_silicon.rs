//! Laser-driven electron dynamics in silicon: the paper's §4 scenario at
//! laptop scale. A 380 nm pulse excites a Si₈ cell; we track the current
//! density and energy absorbed over a few PT-CN steps.
//!
//! Run with: `cargo run --release --example laser_silicon`

use pwdft_rt::core::{current_density, LaserPulse, PtCnOptions, PtCnPropagator, TdState};
use pwdft_rt::ham::KsSystem;
use pwdft_rt::lattice::silicon_cubic_supercell;
use pwdft_rt::num::units::{attosecond_to_au, au_to_attosecond};
use pwdft_rt::scf::{scf_loop, ScfOptions};
use pwdft_rt::xc::XcKind;

fn main() {
    let structure = silicon_cubic_supercell(1, 1, 1);
    let sys = KsSystem::new(structure, 2.5, XcKind::Lda, None);
    let mut opts = ScfOptions::default();
    opts.rho_tol = 1e-7;
    let gs = scf_loop(&sys, opts);
    println!("E₀ = {:.6} Ha", gs.energies.total());

    // the paper's 380 nm pulse (weak amplitude for a linear-response kick)
    let laser = LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0));
    let prop = PtCnPropagator {
        sys: &sys,
        laser: Some(laser),
        opts: PtCnOptions::default(),
    };
    let mut state = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let dt = attosecond_to_au(25.0);
    println!("{:>8} {:>14} {:>14} {:>6}", "t (as)", "j_z (a.u.)", "ΔE (Ha)", "SCF");
    for _ in 0..8 {
        let stats = prop.step(&mut state, dt);
        let a = laser.a_field(state.t);
        let j = current_density(&sys, &state.psi, a);
        let rho = sys.density(&state.psi);
        let e = sys.energies(&state.psi, &rho, a).total();
        println!(
            "{:>8.1} {:>14.6e} {:>14.6e} {:>6}",
            au_to_attosecond(state.t),
            j[2],
            e - gs.energies.total(),
            stats.scf_iterations
        );
    }
    println!("(current builds along the pulse's z polarization; energy is absorbed)");
}
