//! Laser-driven electron dynamics in silicon: the paper's §4 scenario at
//! laptop scale. A 380 nm pulse excites a Si₈ cell; the `Simulation`
//! driver records the current density and energy absorbed over a few
//! PT-CN steps through the standard observer pipeline.
//!
//! Run with: `cargo run --release --example laser_silicon`

use pwdft_rt::prelude::*;

fn main() -> Result<(), PtError> {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.5)
        .xc(XcKind::Lda)
        .build()?;
    let opts = ScfOptions {
        rho_tol: 1e-7,
        ..Default::default()
    };
    let gs = scf_loop(&sys, opts)?;
    let e0 = gs.energies.total();
    println!("E₀ = {e0:.6} Ha");

    // the paper's 380 nm pulse (weak amplitude for a linear-response kick)
    let laser = LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0));
    let series = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser)
        .dt(attosecond_to_au(25.0))
        .steps(8)
        .propagator(Box::new(PtCnPropagator::default()))
        .standard_observers()
        .build()?
        .run()?;

    let j_z = series
        .channel("current_z")
        .expect("standard observers record current");
    let energy = series
        .channel("energy")
        .expect("standard observers record energy");
    println!(
        "{:>8} {:>14} {:>14} {:>6}",
        "t (as)", "j_z (a.u.)", "ΔE (Ha)", "SCF"
    );
    for i in 0..series.len() {
        println!(
            "{:>8.1} {:>14.6e} {:>14.6e} {:>6}",
            au_to_attosecond(series.t[i]),
            j_z[i],
            energy[i] - e0,
            series.stats[i].scf_iterations
        );
    }
    println!("(current builds along the pulse's z polarization; energy is absorbed)");
    Ok(())
}
