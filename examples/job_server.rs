//! The job server in five minutes: start an in-process `pt-serve` server,
//! submit a two-job fleet against a shared core budget, tail one job's
//! energy live over TCP while it runs, then fetch both finished tables
//! and verify the served numbers are bit-identical to solo in-process
//! runs of the same specs.
//!
//! ```sh
//! cargo run --release --example job_server
//! ```
//!
//! This is also the CI serve-smoke demo: it exits nonzero if serving
//! changed a single bit.

use pwdft_rt::prelude::*;
use pwdft_rt::serve::{self, LaserSpec, SystemSpec};

fn spec(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 2.0,
            xc: XcKind::Lda,
            hybrid: false,
            bands: None,
            exchange: Default::default(),
        },
        laser: Some(LaserSpec {
            a0: 0.02,
            t0_as: 200.0,
            sigma_as: 100.0,
        }),
        dt_as: 25.0,
        steps,
        checkpoint_every: 1,
        layout: RankLayout::new(1, 1),
    }
}

fn main() -> Result<(), PtError> {
    let dir = std::env::temp_dir().join(format!("pt_serve_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let specs = [spec("fleet-a", 4), spec("fleet-b", 3)];
    // solo references: what each spec computes with no server involved
    let references: Vec<Table> = specs
        .iter()
        .map(|s| s.run_reference()?.to_table())
        .collect::<Result<_, _>>()?;

    // a 2-core budget runs both 1-core jobs concurrently
    let handle = serve::start(ServerConfig::new(&dir, 2))?;
    println!("server listening on {}", handle.addr());
    let mut client = Client::connect(&handle.addr().to_string())?;
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| client.submit(s))
        .collect::<Result<_, _>>()?;

    // live-tail job A's energy on a second connection while it runs
    let mut tail = Client::connect(&handle.addr().to_string())?;
    let mut rows = 0usize;
    let state = tail.tail(ids[0], "energy", 0, true, |chunk| {
        for (i, e) in chunk.values.iter().enumerate() {
            println!(
                "  live: {} step {} energy {e:.12}",
                specs[0].name,
                chunk.start + i + 1
            );
        }
        rows += chunk.values.len();
    })?;
    println!(
        "tail of {} ended in state {state:?} after {rows} rows",
        specs[0].name
    );

    // fetch both results and hold them to the bit-exactness contract
    let mut checked = 0usize;
    for ((&id, s), reference) in ids.iter().zip(&specs).zip(&references) {
        let row = client.wait_terminal(id, std::time::Duration::from_secs(600))?;
        assert_eq!(
            row.state,
            serve::JobState::Done,
            "{}: {:?}",
            s.name,
            row.error
        );
        let table = client.fetch(id)?;
        for column in ["t", "energy", "current_z", "n_electrons"] {
            let got = Client::table_column(&table, column).expect("served column");
            let want = reference.get(column).expect("reference column");
            assert_eq!(got.len(), want.len(), "{}: column {column}", s.name);
            for (a, b) in got.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}: column {column}", s.name);
                checked += 1;
            }
        }
        println!("{}: done, served bits match the solo run", s.name);
    }
    println!("fleet OK: {checked} served samples bit-identical to solo runs");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
