//! Run Alg. 2 (the distributed Fock exchange) across virtual MPI ranks and
//! verify both the numerics (identical to serial) and the communication
//! volume law N_p × N_G × N_e of §3.2, in f64 and f32 wire formats.
//!
//! Run with: `cargo run --release --example distributed_exchange`

use pwdft_rt::ham::{
    distributed_fock_apply, serial_fock_reference, BandDistribution, FockMode, FockOperator,
    PwGrids, ScreenedKernel,
};
use pwdft_rt::lattice::silicon_cubic_supercell;
use pwdft_rt::linalg::CMat;
use pwdft_rt::mpi::{run_ranks, Wire};
use pwdft_rt::num::c64;

fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut m = CMat::from_fn(ng, nb, |_, _| c64::new(rnd(), rnd()));
    for j in 0..nb {
        let nrm = pwdft_rt::num::complex::znrm2(m.col(j));
        for z in m.col_mut(j) {
            *z = z.scale(1.0 / nrm);
        }
    }
    m
}

fn main() {
    let s = silicon_cubic_supercell(1, 1, 1);
    let grids = PwGrids::new(&s, 2.0);
    let (ng, nb) = (grids.ng(), 8);
    println!("N_G = {ng}, N_e = {nb}");
    let phi = rand_block(ng, nb, 3);
    let psi = rand_block(ng, nb, 4);
    let kernel = ScreenedKernel::new(&grids, 0.11);
    let reference = {
        let f = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        serial_fock_reference(&grids, &f, &psi)
    };
    for (wire, name, bytes) in [(Wire::F64, "f64", 16u64), (Wire::F32, "f32", 8u64)] {
        for np in [2usize, 4] {
            let dist = BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            let (g, ph, ps, k) = (&grids, &phi, &psi, &kernel);
            let (outs, stats) = run_ranks(np, wire, move |comm| {
                let mine = dist.local_bands(comm.rank());
                let take = |m: &CMat| {
                    let mut lm = CMat::zeros(ng, mine.len());
                    for (lj, &b) in mine.iter().enumerate() {
                        lm.col_mut(lj).copy_from_slice(m.col(b));
                    }
                    lm
                };
                (
                    mine.clone(),
                    distributed_fock_apply(comm, g, dist, &take(ph), &take(ps), 0.25, k),
                )
            });
            let mut err = 0.0f64;
            for (mine, out) in &outs {
                for (lj, &b) in mine.iter().enumerate() {
                    for (x, y) in out.col(lj).iter().zip(reference.col(b)) {
                        err = err.max((*x - *y).abs());
                    }
                }
            }
            let volume = (np as u64 - 1) * nb as u64 * ng as u64 * bytes;
            println!(
                "wire={name} ranks={np}: max|Δ| vs serial = {err:.2e}, bcast {} B (law: {} B)",
                stats.bcast_bytes, volume
            );
            assert_eq!(
                stats.bcast_bytes, volume,
                "communication volume law violated"
            );
        }
    }
    println!("Alg. 2 verified: distributed == serial, volume law N_p·N_G·N_e holds.");
}
