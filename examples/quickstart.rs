//! Quickstart: converge a hybrid-functional (HSE06-like) ground state for
//! an 8-atom silicon cell, then take one 50-attosecond PT-CN step.
//!
//! Run with: `cargo run --release --example quickstart`

use pwdft_rt::core::{PtCnOptions, PtCnPropagator, TdState};
use pwdft_rt::ham::{HybridConfig, KsSystem};
use pwdft_rt::lattice::silicon_cubic_supercell;
use pwdft_rt::num::units::attosecond_to_au;
use pwdft_rt::scf::{scf_loop, ScfOptions};
use pwdft_rt::xc::XcKind;

fn main() {
    // 8 Si atoms, 16 doubly occupied bands, HSE06-style hybrid functional.
    // E_cut is kept small so this finishes in seconds; raise it for
    // physical accuracy (the paper uses 10 Ha).
    let structure = silicon_cubic_supercell(1, 1, 1);
    let sys = KsSystem::new(structure, 2.5, XcKind::Pbe, Some(HybridConfig::hse06()));
    println!(
        "system: {} atoms, {} bands, N_G = {} plane waves",
        sys.structure.atoms.len(),
        sys.n_bands(),
        sys.grids.ng()
    );

    let mut opts = ScfOptions::default();
    opts.rho_tol = 1e-6;
    opts.max_phi_updates = 3;
    let gs = scf_loop(&sys, opts);
    println!(
        "ground state: E = {:.6} Ha ({} SCF iterations, residual {:.1e})",
        gs.energies.total(),
        gs.scf_iterations,
        gs.rho_residual
    );
    println!("  breakdown: {:?}", gs.energies);

    // one PT-CN step at the paper's 50 as
    let prop = PtCnPropagator { sys: &sys, laser: None, opts: PtCnOptions::default() };
    let mut state = TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let stats = prop.step(&mut state, attosecond_to_au(50.0));
    println!(
        "PT-CN 50 as step: {} SCF iterations, {} HΨ applications, ρ-residual {:.1e}",
        stats.scf_iterations, stats.h_applications, stats.rho_residual
    );
    println!(
        "orthonormality after re-orthogonalization: {:.1e}",
        pwdft_rt::core::orthonormality_error(&state.psi)
    );
}
