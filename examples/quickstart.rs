//! Quickstart: converge a hybrid-functional (HSE06-like) ground state for
//! an 8-atom silicon cell, then take PT-CN steps through the `Simulation`
//! API.
//!
//! Run with: `cargo run --release --example quickstart`

use pwdft_rt::prelude::*;

fn main() -> Result<(), PtError> {
    // 8 Si atoms, 16 doubly occupied bands, HSE06-style hybrid functional.
    // E_cut is kept small so this finishes in seconds; raise it for
    // physical accuracy (the paper uses 10 Ha).
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.5)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .build()?;
    println!(
        "system: {} atoms, {} bands, N_G = {} plane waves",
        sys.structure.atoms.len(),
        sys.n_bands(),
        sys.grids.ng()
    );

    let opts = ScfOptions {
        rho_tol: 1e-6,
        max_phi_updates: 3,
        ..Default::default()
    };
    let gs = scf_loop(&sys, opts)?;
    println!(
        "ground state: E = {:.6} Ha ({} SCF iterations, residual {:.1e})",
        gs.energies.total(),
        gs.scf_iterations,
        gs.rho_residual
    );
    println!("  breakdown: {:?}", gs.energies);

    // two PT-CN steps at the paper's 50 as, with the standard observers
    let mut sim = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .dt(attosecond_to_au(50.0))
        .steps(2)
        .propagator(Box::new(PtCnPropagator::default()))
        .standard_observers()
        .build()?;
    let series = sim.run()?;
    for (i, stats) in series.stats.iter().enumerate() {
        println!(
            "PT-CN step {}: {} SCF iterations, {} HΨ applications, ρ-residual {:.1e}",
            i + 1,
            stats.scf_iterations,
            stats.h_applications,
            stats.rho_residual
        );
    }
    println!(
        "energy drift over {} steps: {:.2e} Ha",
        series.len(),
        series.channel("energy").unwrap().last().unwrap() - gs.energies.total()
    );
    println!(
        "orthonormality after re-orthogonalization: {:.1e}",
        series
            .channel("orthonormality_error")
            .unwrap()
            .last()
            .unwrap()
    );
    Ok(())
}
