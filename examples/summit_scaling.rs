//! Regenerate the paper's Summit evaluation from the Layer-B model:
//! Table 1's strong scaling, the RK4/PT-CN ratio and the weak scaling.
//!
//! Run with: `cargo run --release --example summit_scaling`

fn main() {
    let model = pwdft_rt::perf::CostModel::new();
    let pr = pwdft_rt::perf::Problem::paper_1536();
    println!("1536-atom Si, PT-CN step totals (model vs paper):");
    for (i, &p) in pwdft_rt::perf::PAPER_GPU_COUNTS.iter().enumerate() {
        println!(
            "  {:>5} GPUs: {:>8.1} s (paper {:>7.1} s)",
            p,
            model.step_total(p, &pr),
            pwdft_rt::perf::PAPER_TABLE1_TOTAL[i]
        );
    }
    let best = model.step_total(768, &pr);
    println!(
        "\ntime per femtosecond at 768 GPUs: {:.2} h (paper: ~1.5 h)",
        best * 20.0 / 3600.0
    );
    let machine = pwdft_rt::summit::Summit::default();
    println!(
        "power: 72 GPUs = {:.0} W vs 3072 CPU cores = {:.0} W, GPU {:.1}x faster",
        machine.gpu_run_power(72),
        machine.cpu_run_power(3072),
        model.cpu_step(3072, &pr) / model.step_total(72, &pr)
    );
    println!("\nweak scaling (50 as step):");
    for r in pwdft_rt::perf::fig8_rows(&model) {
        println!(
            "  {:>5} atoms on {:>4} GPUs: {:>8.2} s",
            r.atoms, r.gpus, r.seconds
        );
    }
}
