//! Checkpoint/restart in five minutes: run a laser-driven trajectory with
//! rolling snapshots, "kill" the job partway, resume from disk, and verify
//! the resumed trajectory is bit-identical to an uninterrupted one.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! This is also the CI kill-at-step-k/resume smoke: it exits nonzero if
//! any channel of the merged series differs by a single bit.

use pwdft_rt::core::{latest_checkpoint, RunCheckpoint};
use pwdft_rt::prelude::*;

fn main() -> Result<(), PtError> {
    let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Lda)
        .build()?;
    let gs = scf_loop(&sys, ScfOptions::default())?;
    let laser = LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0));
    let dt = attosecond_to_au(25.0);
    let steps = 6;
    let kill_at = 3;

    // reference: the uninterrupted trajectory
    let uninterrupted = SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser)
        .dt(dt)
        .steps(steps)
        .standard_observers()
        .build()?
        .run()?;

    // "job 1": same run with rolling snapshots, killed after `kill_at`
    // steps (we model the kill by running a shorter window of the same
    // trajectory — the snapshot on disk is all that survives a real kill)
    let dir = std::env::temp_dir().join(format!("pt_ckpt_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SimulationBuilder::new(&sys)
        .initial_orbitals(gs.orbitals.clone())
        .laser(laser)
        .dt(dt)
        .steps(steps)
        .standard_observers()
        .checkpoint_every(1, &dir)
        .checkpoint_keep(steps) // keep them all so the demo can pick step 3
        .build()?
        .run()?;
    let snapshot = dir.join(format!("ckpt_{kill_at:08}.ptio"));
    assert!(snapshot.exists(), "expected {}", snapshot.display());
    assert!(latest_checkpoint(&dir)?.is_some());
    let ck = RunCheckpoint::read(&snapshot)?;
    println!(
        "resuming from {} (step {} of {}, t = {:.3} a.u., {} channels)",
        snapshot.display(),
        ck.series.len(),
        ck.series.len() + ck.steps_remaining,
        ck.t,
        ck.series.channel_names().len(),
    );

    // "job 2": resume and finish the trajectory
    let merged = Simulation::resume(&sys, &snapshot)?.run()?;

    assert_eq!(merged.len(), uninterrupted.len());
    let mut checked = 0usize;
    for name in uninterrupted.channel_names() {
        let a = uninterrupted.channel(name).unwrap();
        let b = merged.channel(name).unwrap();
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "channel '{name}'[{i}]: {x:e} != {y:e}"
            );
            checked += 1;
        }
    }
    println!("kill/resume OK: {checked} samples bit-identical to the uninterrupted run");

    // export the merged record as run artifacts
    let table = merged.to_table()?;
    table.write_json(dir.join("series.json"))?;
    table.write_csv(dir.join("series.csv"))?;
    println!(
        "exported {} and series.csv",
        dir.join("series.json").display()
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
